package clsacim

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clsacim/internal/check"
	"clsacim/internal/metrics"
)

// Engine is the concurrency-safe entry point of the package: it holds
// an architecture description (set through Options), a keyed compile
// cache, and a bounded worker pool for batch evaluation.
//
// Compilation — frontend canonicalization, im2col analysis, duplication
// solving, Stage I-II — dominates the cost of an evaluation, and sweeps
// (many mapping points, one model) as well as services (many requests,
// few distinct configurations) repeat it needlessly with the one-shot
// Compile/Evaluate API. The Engine compiles each distinct
// (model, architecture, mapping) key exactly once and shares the
// immutable *Compiled across all subsequent requests; Stats exposes the
// hit accounting. All methods are safe for concurrent use.
//
// Two properties make the cache safe under sustained multi-tenant
// traffic (e.g. behind the serve package's HTTP daemon):
//
//   - Single-flight compilation: concurrent requests for the same key
//     share one compilation — the first requester compiles, everyone
//     else waits on it (honoring their context), so a burst of
//     identical requests costs one compile, not N.
//   - Bounded memory: WithCacheLimit caps the number of retained
//     compilations; beyond the cap, the least-recently-used finished
//     entry is evicted (Stats.Evictions counts them). In-flight
//     compilations are never evicted, so the bound can be exceeded
//     transiently while more than CacheLimit distinct keys compile at
//     once.
type Engine struct {
	base       Config
	workers    int
	validate   bool
	cacheLimit int // 0 = unbounded

	mu    sync.Mutex
	cache map[string]*compileEntry
	lru   *list.List // *compileEntry values; front = most recently used

	compiles    atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
	evaluations atomic.Int64
	streamEvals atomic.Int64
	streamInfs  atomic.Int64
}

// compileEntry is a cache slot with single-flight semantics: the first
// requester compiles, everyone else waits on ready.
type compileEntry struct {
	key   string
	ready chan struct{}
	c     *Compiled
	err   error

	// done is set just before ready is closed; the eviction scan reads
	// it under Engine.mu to skip in-flight entries without blocking.
	done bool
	// elem is the entry's LRU position, nil once evicted. Guarded by
	// Engine.mu.
	elem *list.Element
}

// New builds an Engine from functional options. The zero option set
// reproduces the paper's case-study architecture (256x256 crossbars,
// tMVM = 1400 ns, idealized data movement).
func New(opts ...Option) (*Engine, error) {
	e := &Engine{
		workers: runtime.GOMAXPROCS(0),
		cache:   make(map[string]*compileEntry),
		lru:     list.New(),
	}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// MustNew is New panicking on error, for initialization of harnesses
// and tests where the options are static.
func MustNew(opts ...Option) *Engine {
	e, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return e
}

// Stats is a snapshot of the Engine's cache and work accounting.
type Stats struct {
	// Compiles counts full pipeline compilations actually executed —
	// one per distinct (model, architecture, mapping) key requested.
	Compiles int64
	// CacheHits counts compile requests served from the cache
	// (including requests that waited on an in-flight compilation).
	CacheHits int64
	// CacheMisses counts compile requests that had to compile.
	CacheMisses int64
	// Evictions counts cached compilations dropped by the LRU bound
	// (see WithCacheLimit). Always 0 on an unbounded engine.
	Evictions int64
	// Evaluations counts completed Evaluate calls.
	Evaluations int64
	// StreamEvaluations counts completed EvaluateStream calls, and
	// StreamInferences the total inferences they served.
	StreamEvaluations int64
	StreamInferences  int64
	// CachedEntries is the current number of cached compilations.
	CachedEntries int
	// CacheLimit is the configured bound on CachedEntries (0 =
	// unbounded).
	CacheLimit int
}

// Stats returns a consistent-enough snapshot of the Engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	entries := len(e.cache)
	e.mu.Unlock()
	return Stats{
		Compiles:          e.compiles.Load(),
		CacheHits:         e.hits.Load(),
		CacheMisses:       e.misses.Load(),
		Evictions:         e.evictions.Load(),
		Evaluations:       e.evaluations.Load(),
		StreamEvaluations: e.streamEvals.Load(),
		StreamInferences:  e.streamInfs.Load(),
		CachedEntries:     entries,
		CacheLimit:        e.cacheLimit,
	}
}

// effective resolves the Config a request compiles under: the request's
// full Config override if present (else the Engine defaults), with the
// request's non-zero mapping fields overlaid.
func (e *Engine) effective(req Request) Config {
	cfg := e.base
	if req.Config != nil {
		cfg = *req.Config
	}
	if req.ExtraPEs != 0 {
		cfg.ExtraPEs = req.ExtraPEs
	}
	if req.TotalPEs != 0 {
		cfg.TotalPEs = req.TotalPEs
	}
	if req.WeightDuplication {
		cfg.WeightDuplication = true
	}
	if req.Solver != "" {
		cfg.Solver = req.Solver
	}
	return cfg
}

// cacheKey canonicalizes a (model, config) pair. Configs are defaulted
// first so that e.g. Config{} and Config{PERows: 256, PECols: 256} share
// an entry, and compile-irrelevant fields are normalized away: without
// weight duplication the solver never runs, so all solver names map to
// the same no-duplication compilation — this is what lets a solver
// comparison sweep share one baseline.
func cacheKey(model string, cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	if !cfg.WeightDuplication {
		cfg.Solver = "none"
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("clsacim: encoding cache key: %w", err)
	}
	return model + "\x00" + string(b), nil
}

// compile returns the cached compilation of (m, cfg), compiling at most
// once per key (single-flight). Waiters honor ctx; the compilation
// itself runs to completion once started so late arrivals can still use
// it. With a cache limit set, finishing a compilation may evict the
// least-recently-used finished entries beyond the bound.
func (e *Engine) compile(ctx context.Context, m *Model, cfg Config) (*Compiled, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key, err := cacheKey(m.Name, cfg)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	ent, ok := e.cache[key]
	if ok {
		e.hits.Add(1)
		if ent.elem != nil {
			e.lru.MoveToFront(ent.elem)
		}
		e.mu.Unlock()
		select {
		case <-ent.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return ent.c, ent.err
	}
	e.misses.Add(1)
	ent = &compileEntry{key: key, ready: make(chan struct{})}
	ent.elem = e.lru.PushFront(ent)
	e.cache[key] = ent
	e.evictLocked()
	e.mu.Unlock()

	e.compiles.Add(1)
	// Close ready even if Compile panics (e.g. inside a custom solver):
	// a never-closed entry would block every later request for this key
	// forever once a recover() higher up keeps the process alive.
	defer func() {
		if ent.err == nil && ent.c == nil {
			ent.err = fmt.Errorf("clsacim: compiling %q panicked", m.Name)
		}
		e.mu.Lock()
		ent.done = true
		// The in-flight guard may have held the cache over its bound
		// while this key compiled; re-run the scan now that the entry
		// is evictable.
		e.evictLocked()
		e.mu.Unlock()
		close(ent.ready)
	}()
	ent.c, ent.err = Compile(m, cfg)
	return ent.c, ent.err
}

// evictLocked drops least-recently-used finished entries until the
// cache respects the configured bound. In-flight compilations are
// skipped: evicting one would detach its waiters from the single-flight
// slot and recompile the same key concurrently. Callers hold e.mu.
func (e *Engine) evictLocked() {
	if e.cacheLimit <= 0 {
		return
	}
	for el := e.lru.Back(); el != nil && len(e.cache) > e.cacheLimit; {
		ent := el.Value.(*compileEntry)
		prev := el.Prev()
		if ent.done {
			delete(e.cache, ent.key)
			e.lru.Remove(el)
			ent.elem = nil
			e.evictions.Add(1)
		}
		el = prev
	}
}

// requestCtx derives the context a request runs under: ctx bounded by
// the request's own deadline when TimeoutMillis is set. Values too
// large to represent as a time.Duration are clamped to the maximum
// rather than overflowing into an already-expired deadline. The
// returned cancel func must always be called.
func requestCtx(ctx context.Context, req Request) (context.Context, context.CancelFunc) {
	if req.TimeoutMillis > 0 {
		ms := req.TimeoutMillis
		if ms > math.MaxInt64/int64(time.Millisecond) {
			ms = math.MaxInt64 / int64(time.Millisecond)
		}
		return context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
	}
	return ctx, func() {}
}

// compileRequest resolves the request's model and compiles it (cached)
// under the request's effective configuration and deadline. The
// returned context carries the deadline for the caller's later steps;
// cancel must always be called.
func (e *Engine) compileRequest(ctx context.Context, req Request) (*Compiled, context.Context, context.CancelFunc, error) {
	m, err := lookupModel(req.Model)
	if err != nil {
		return nil, ctx, func() {}, err
	}
	ctx, cancel := requestCtx(ctx, req)
	c, err := e.compile(ctx, m, e.effective(req))
	return c, ctx, cancel, err
}

// Compile resolves the request's model and returns its (cached)
// compilation under the request's effective configuration.
func (e *Engine) Compile(ctx context.Context, req Request) (*Compiled, error) {
	c, ctx, cancel, err := e.compileRequest(ctx, req)
	defer cancel()
	if err != nil {
		return nil, err
	}
	// A compilation that ran past the request deadline still lands in
	// the cache for later requests, but this caller asked for a bound
	// and must see the expiry — same contract as Schedule/Evaluate.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// Schedule compiles (cached) and schedules the request, returning the
// paper's per-configuration report.
func (e *Engine) Schedule(ctx context.Context, req Request) (*Report, error) {
	comp, ctx, cancel, err := e.compileRequest(ctx, req)
	defer cancel()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep, err := comp.Schedule(req.Mode)
	if err != nil {
		return nil, err
	}
	if err := e.checkReport(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// checkReport runs the engine-independent invariant checker on a
// scheduled report when WithValidation is on. Timelines are immutable
// once cached on the Compiled, so each (compilation, canonical mode)
// pair is validated at most once even across batch sweeps that rescore
// the same baseline per point.
func (e *Engine) checkReport(rep *Report) error {
	if !e.validate {
		return nil
	}
	comp := rep.comp
	key := comp.normalizeMode(rep.Mode).wireName()
	comp.schedMu.Lock()
	done := comp.checked[key]
	comp.schedMu.Unlock()
	if done {
		return nil
	}
	tl := rep.sched
	opt := comp.schedOptions(rep.Mode)
	if err := check.Timeline(comp.mapped, comp.depGraph, tl.Policy, tl, check.Options{EdgeCost: opt.EdgeCost}); err != nil {
		return fmt.Errorf("clsacim: %q %s timeline failed validation: %w", rep.Model, rep.Mode, err)
	}
	comp.schedMu.Lock()
	comp.checked[key] = true
	comp.schedMu.Unlock()
	return nil
}

// Evaluate compiles and schedules the request and measures it against
// the paper's reference (layer-by-layer, no duplication, F = PEmin).
// Both compilations go through the Engine cache, so a sweep over
// mapping points compiles the shared baseline once.
func (e *Engine) Evaluate(ctx context.Context, req Request) (*Evaluation, error) {
	m, err := lookupModel(req.Model)
	if err != nil {
		return nil, err
	}
	return e.evaluate(ctx, m, req)
}

// EvaluateModel is Evaluate for a *Model held directly (e.g. built with
// Builder but not registered). The compile cache is keyed by the
// model's Name, so distinct models sharing an Engine must carry
// distinct names.
func (e *Engine) EvaluateModel(ctx context.Context, m *Model, req Request) (*Evaluation, error) {
	if m == nil {
		return nil, fmt.Errorf("clsacim: nil model")
	}
	return e.evaluate(ctx, m, req)
}

func (e *Engine) evaluate(ctx context.Context, m *Model, req Request) (*Evaluation, error) {
	ctx, cancel := requestCtx(ctx, req)
	defer cancel()
	cfg := e.effective(req)
	baseCfg := cfg
	baseCfg.ExtraPEs = 0
	baseCfg.TotalPEs = 0
	baseCfg.WeightDuplication = false
	baseComp, err := e.compile(ctx, m, baseCfg)
	if err != nil {
		return nil, err
	}
	baseline, err := baseComp.Schedule(ModeLayerByLayer)
	if err != nil {
		return nil, err
	}
	if err := e.checkReport(baseline); err != nil {
		return nil, err
	}
	comp, err := e.compile(ctx, m, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	result, err := comp.Schedule(req.Mode)
	if err != nil {
		return nil, err
	}
	if err := e.checkReport(result); err != nil {
		return nil, err
	}
	e.evaluations.Add(1)
	return newEvaluation(baseline, result, comp), nil
}

// EvaluateBatch evaluates requests concurrently on a worker pool
// bounded by WithWorkers (default GOMAXPROCS). Results are positionally
// aligned with reqs; per-request failures land in BatchResult.Err
// rather than aborting the batch. The returned error is non-nil only
// when ctx was cancelled, in which case unprocessed requests carry the
// context error.
func (e *Engine) EvaluateBatch(ctx context.Context, reqs []Request) ([]BatchResult, error) {
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	workers := e.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i].Request = reqs[i]
				if err := ctx.Err(); err != nil {
					out[i].Err = err
					continue
				}
				out[i].Evaluation, out[i].Err = e.Evaluate(ctx, reqs[i])
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out, ctx.Err()
}

// newEvaluation assembles the comparison metrics shared by Evaluate and
// Engine.Evaluate.
func newEvaluation(baseline, result *Report, comp *Compiled) *Evaluation {
	x := comp.TotalPEs() - comp.PEmin()
	return &Evaluation{
		Baseline:        baseline,
		Result:          result,
		Speedup:         metrics.Speedup(baseline.MakespanCycles, result.MakespanCycles),
		UtilizationGain: result.Utilization / baseline.Utilization,
		Eq3Speedup:      metrics.Eq3Speedup(result.Utilization, baseline.Utilization, comp.PEmin(), x),
	}
}
