package clsacim

import (
	"context"
	"encoding/json"
	"reflect"
	"runtime"
	"testing"
)

// searchEngine builds a fresh engine with coarse Stage I granularity so
// every search evaluation stays cheap.
func searchEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	return MustNew(append([]Option{WithTargetSets(26)}, opts...)...)
}

// Determinism: the same (seed, budget) must yield byte-identical
// duplication vectors and makespans regardless of GOMAXPROCS — the
// search is a single-threaded walk over a deterministic cost model, so
// worker-pool parallelism elsewhere must not leak into it.
func TestSearchSolverDeterministicAcrossGOMAXPROCS(t *testing.T) {
	req := Request{
		Model: "tinyyolov4", Mode: ModeCrossLayer, ExtraPEs: 24,
		WeightDuplication: true, Solver: "search",
		SolverSeed: 7, SolverBudget: 24,
	}
	run := func(procs int) ([]int, int64) {
		t.Helper()
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		// A fresh engine per run: the compile cache must not serve the
		// second run the first run's result.
		ev, err := searchEngine(t).Evaluate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		return ev.Result.Duplication, ev.Result.MakespanCycles
	}
	d1, m1 := run(1)
	d4, m4 := run(4)
	if !reflect.DeepEqual(d1, d4) {
		t.Errorf("duplication differs across GOMAXPROCS: %v vs %v", d1, d4)
	}
	if m1 != m4 {
		t.Errorf("makespan differs across GOMAXPROCS: %d vs %d", m1, m4)
	}
}

// Property: with the dp start seeded into its evaluation budget, search
// never schedules worse than dp — for any model and any mode.
func TestSearchNeverWorseThanDPSchedule(t *testing.T) {
	e := searchEngine(t)
	ctx := context.Background()
	for _, model := range []string{"tinyconvnet", "tinybranchnet", "tinyyolov4"} {
		for _, mode := range []ScheduleMode{ModeLayerByLayer, ModeWindow(4), ModeCrossLayer} {
			base := Request{
				Model: model, Mode: mode, ExtraPEs: 16,
				WeightDuplication: true, SolverSeed: 1,
			}
			dpReq := base
			dpReq.Solver = "dp"
			dp, err := e.Evaluate(ctx, dpReq)
			if err != nil {
				t.Fatalf("%s/%s dp: %v", model, mode.Name(), err)
			}
			sReq := base
			sReq.Solver = "search"
			s, err := e.Evaluate(ctx, sReq)
			if err != nil {
				t.Fatalf("%s/%s search: %v", model, mode.Name(), err)
			}
			if s.Result.MakespanCycles > dp.Result.MakespanCycles {
				t.Errorf("%s/%s: search makespan %d worse than dp %d",
					model, mode.Name(), s.Result.MakespanCycles, dp.Result.MakespanCycles)
			}
		}
	}
}

// Cache keying: scored-solver knobs must only split cache entries when
// a scored solver actually runs, and the scoring mode must follow the
// request's scheduling mode.
func TestSearchSolverCacheKeys(t *testing.T) {
	e := searchEngine(t)
	ctx := context.Background()
	// A stray seed/budget on a plain solver shares the plain entry.
	for _, req := range []Request{
		{Model: "tinyconvnet", Mode: ModeCrossLayer, ExtraPEs: 4, WeightDuplication: true, Solver: "dp"},
		{Model: "tinyconvnet", Mode: ModeCrossLayer, ExtraPEs: 4, WeightDuplication: true, Solver: "dp", SolverSeed: 99, SolverBudget: 7},
	} {
		if _, err := e.Evaluate(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	// 2 keys: the shared baseline and one dp variant.
	if s := e.Stats(); s.Compiles != 2 {
		t.Errorf("dp with stray scored knobs split the cache: %d compiles, want 2", s.Compiles)
	}
	// Search under two modes optimizes two different objectives: two
	// distinct variant compilations.
	for _, mode := range []ScheduleMode{ModeCrossLayer, ModeLayerByLayer} {
		if _, err := e.Evaluate(ctx, Request{
			Model: "tinyconvnet", Mode: mode, ExtraPEs: 4,
			WeightDuplication: true, Solver: "search", SolverBudget: 8,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if s := e.Stats(); s.Compiles != 4 {
		t.Errorf("search mode split: %d compiles, want 4", s.Compiles)
	}
	// Repeating the search requests hits the cache.
	if _, err := e.Evaluate(ctx, Request{
		Model: "tinyconvnet", Mode: ModeCrossLayer, ExtraPEs: 4,
		WeightDuplication: true, Solver: "search", SolverBudget: 8,
	}); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Compiles != 4 {
		t.Errorf("repeat search recompiled: %d compiles, want 4", s.Compiles)
	}
}

func TestSearchSolverValidationAndOptions(t *testing.T) {
	if err := (Request{Model: "tinyconvnet", Solver: "search"}).Validate(); err != nil {
		t.Errorf("search solver rejected by Validate: %v", err)
	}
	if err := (Request{Model: "tinyconvnet", Solver: "no-such-solver"}).Validate(); err == nil {
		t.Error("unknown solver passed Validate")
	}
	if err := (Request{Model: "tinyconvnet", SolverBudget: -1}).Validate(); err == nil {
		t.Error("negative SolverBudget passed Validate")
	}
	if _, err := New(WithSolver("search"), WithSolverBudget(16), WithSolverSeed(3)); err != nil {
		t.Errorf("scored solver engine options rejected: %v", err)
	}
	if _, err := New(WithSolverBudget(-1)); err == nil {
		t.Error("negative WithSolverBudget accepted")
	}
	// The registry surface lists the scored solver next to the builtins.
	found := false
	for _, name := range Solvers() {
		if name == "search" {
			found = true
		}
	}
	if !found {
		t.Errorf("Solvers() = %v missing search", Solvers())
	}
}

func TestSearchKnobsJSONRoundTrip(t *testing.T) {
	in := Request{
		Model: "tinyyolov4", Mode: ModeCrossLayer, ExtraPEs: 8,
		WeightDuplication: true, Solver: "search",
		SolverBudget: 32, SolverSeed: 11,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
	cfgIn := Config{WeightDuplication: true, Solver: "search", SolverBudget: 9, SolverSeed: 4, SolverMode: "x4"}
	b, err = json.Marshal(cfgIn)
	if err != nil {
		t.Fatal(err)
	}
	var cfgOut Config
	if err := json.Unmarshal(b, &cfgOut); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfgIn, cfgOut) {
		t.Errorf("config round trip: %+v != %+v", cfgOut, cfgIn)
	}
	// Zero scored knobs stay off the wire.
	b, _ = json.Marshal(Request{Model: "m"})
	if s := string(b); s != `{"model":"m","mode":"lbl"}` {
		t.Errorf("zero request marshals to %s", s)
	}
}
