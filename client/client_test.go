package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"clsacim"
	"clsacim/client"
	"clsacim/serve"
)

// startDaemon runs a real serve.Server on a loopback listener and
// returns a client pointed at it.
func startDaemon(t *testing.T) *client.Client {
	t.Helper()
	eng, err := clsacim.New(clsacim.WithCacheLimit(8))
	if err != nil {
		t.Fatal(err)
	}
	h, err := serve.New(eng, serve.WithLogger(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClientRoundTrip(t *testing.T) {
	c := startDaemon(t)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	ev, err := c.Evaluate(ctx, clsacim.Request{
		Model: "tinyconvnet", Mode: clsacim.ModeCrossLayer,
		ExtraPEs: 2, WeightDuplication: true,
	})
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if ev.Speedup < 1 || ev.Result.Mode != "xinf" {
		t.Errorf("evaluation = %+v, want a real xinf result", ev)
	}

	reqs := []clsacim.Request{
		{Model: "tinyconvnet", Mode: clsacim.ModeCrossLayer, ExtraPEs: 1, WeightDuplication: true},
		{Model: "tinyconvnet", Mode: clsacim.ModeLayerByLayer},
	}
	results, err := c.EvaluateBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i, r := range results {
		if r.Error != "" || r.Evaluation == nil {
			t.Errorf("batch result %d = %+v, want success", i, r)
		}
		if r.Request.Model != reqs[i].Model || r.Request.ExtraPEs != reqs[i].ExtraPEs {
			t.Errorf("batch result %d echoes request %+v, want %+v", i, r.Request, reqs[i])
		}
	}

	models, err := c.Models(ctx)
	if err != nil {
		t.Fatalf("models: %v", err)
	}
	found := false
	for _, m := range models.Models {
		if m == "tinyconvnet" {
			found = true
		}
	}
	if !found {
		t.Errorf("models = %v, want tinyconvnet listed", models.Models)
	}

	// A new mode on an already-cached compilation takes the incremental
	// path: the compile is a cache hit that still runs Stage III/IV,
	// which the stats expose as a partial hit.
	if _, err := c.Evaluate(ctx, clsacim.Request{
		Model: "tinyconvnet", Mode: clsacim.ModeCrossLayer,
	}); err != nil {
		t.Fatalf("evaluate (cached compile): %v", err)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Engine.Evaluations != 4 {
		t.Errorf("engine evaluations = %d, want 4", stats.Engine.Evaluations)
	}
	if stats.Engine.PartialHits != 1 {
		t.Errorf("engine partial hits = %d, want 1", stats.Engine.PartialHits)
	}
	if stats.Server.BatchItems != 2 {
		t.Errorf("batch items = %d, want 2", stats.Server.BatchItems)
	}
}

func TestClientTypedErrors(t *testing.T) {
	c := startDaemon(t)
	ctx := context.Background()

	_, err := c.Evaluate(ctx, clsacim.Request{Model: "no-such-net"})
	if !errors.Is(err, clsacim.ErrUnknownModel) {
		t.Errorf("unknown model err = %v, want errors.Is ErrUnknownModel", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Errorf("err = %v, want *APIError with status 404", err)
	}

	// Deterministic server-side timeout: a sleeping solver pins the
	// compile well past the 1 ms deadline, and the resulting 504 must
	// map back to context.DeadlineExceeded.
	solverName := fmt.Sprintf("test-client-sleeps-%d", time.Now().UnixNano())
	if err := clsacim.RegisterSolver(solverName, func(layers []clsacim.SolverLayer, totalPEs, minPEs int) ([]int, error) {
		time.Sleep(250 * time.Millisecond)
		d := make([]int, len(layers))
		for i := range d {
			d[i] = 1
		}
		return d, nil
	}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Evaluate(ctx, clsacim.Request{
		Model: "tinyconvnet", ExtraPEs: 1, WeightDuplication: true,
		Solver: solverName, TimeoutMillis: 1,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timed-out err = %v, want errors.Is context.DeadlineExceeded", err)
	}
}

func TestClientWrongPath404IsNotUnknownModel(t *testing.T) {
	// A misconfigured base URL hits the daemon's unknown-endpoint 404
	// (no error code); that must stay a bare *APIError, not satisfy
	// errors.Is(err, clsacim.ErrUnknownModel) — a sweep tool skipping
	// "unknown models" would otherwise silently skip everything.
	eng, err := clsacim.New()
	if err != nil {
		t.Fatal(err)
	}
	h, err := serve.New(eng, serve.WithLogger(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL + "/api") // daemon is mounted at root
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Evaluate(context.Background(), clsacim.Request{Model: "tinyconvnet"})
	if err == nil {
		t.Fatal("evaluate against a wrong path succeeded")
	}
	if errors.Is(err, clsacim.ErrUnknownModel) {
		t.Errorf("wrong-path 404 satisfies ErrUnknownModel: %v", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 || apiErr.Code != "" {
		t.Errorf("err = %v, want a bare *APIError with status 404 and no code", err)
	}
}

func TestClientRejectsBadBaseURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "127.0.0.1:8080", "/just/a/path"} {
		if _, err := client.New(bad); err == nil {
			t.Errorf("New(%q) accepted a base URL without scheme+host", bad)
		}
	}
}
