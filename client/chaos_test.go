package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clsacim"
	"clsacim/client"
	"clsacim/internal/faultinject"
	"clsacim/serve"
)

// TestChaos drives concurrent mixed traffic through the full resilient
// stack: a validating engine behind the serve middleware chain with
// deterministic fault injection (latency spikes, injected errors,
// handler panics, connection drops) and admission gates, called by the
// retrying client. The assertion is the resilience contract itself:
// despite the chaos, a healthy majority of calls succeed, and no call
// ever fails with a non-retryable error — the stack must never turn a
// good request into a client mistake.
func TestChaos(t *testing.T) {
	eng, err := clsacim.New(clsacim.WithValidation(), clsacim.WithCacheLimit(16))
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faultinject.NewInjector(faultinject.Config{
		Seed:        7,
		ErrorRate:   0.08,
		PanicRate:   0.04,
		DropRate:    0.04,
		LatencyRate: 0.15,
		LatencyMin:  time.Millisecond,
		LatencyMax:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(eng,
		serve.WithLogger(t.Logf),
		serve.WithMiddleware(inj.Middleware),
		serve.WithAdmission(serve.ClassEvaluate, serve.AdmissionLimits{
			MaxConcurrent: 4, MaxQueue: 8, MaxWait: 200 * time.Millisecond,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	c, err := client.New(srv.URL,
		client.WithRetry(client.RetryPolicy{
			MaxAttempts: 6,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
			Budget:      1000,
			Seed:        1,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 25
	var ok, soft atomic.Int64
	var wg sync.WaitGroup
	hard := make(chan error, workers*perWorker)
	models := []string{"tinyconvnet", "tinybranchnet", "tinymlp"}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				model := models[(w+i)%len(models)]
				var err error
				switch i % 4 {
				case 0:
					_, err = c.EvaluateBatch(context.Background(), []clsacim.Request{
						{Model: model, Mode: clsacim.ModeLayerByLayer},
						{Model: model, Mode: clsacim.ModeCrossLayer},
					})
				case 1:
					_, err = c.Stats(context.Background())
				default:
					_, err = c.Evaluate(context.Background(), clsacim.Request{
						Model: model, Mode: clsacim.ModeCrossLayer,
					})
				}
				switch {
				case err == nil:
					ok.Add(1)
				case retryableResidue(err):
					soft.Add(1)
				default:
					hard <- fmt.Errorf("worker %d call %d: %w", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(hard)
	for err := range hard {
		t.Errorf("hard failure: %v", err)
	}
	total := int64(workers * perWorker)
	t.Logf("chaos: %d/%d ok, %d exhausted retries", ok.Load(), total, soft.Load())
	if ok.Load() < total/2 {
		t.Fatalf("only %d/%d calls succeeded through the chaos", ok.Load(), total)
	}

	// The daemon survived every injected panic: it still serves, and
	// the panics were counted, not fatal.
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("post-chaos stats: %v", err)
	}
	if _, _, panics, _ := inj.Counts(); panics > 0 && stats.Server.Panics == 0 {
		t.Error("injected panics left no trace in server stats")
	}
}

// retryableResidue reports whether an error is acceptable residue of
// the chaos run: a temporary API error that outlived the retry budget,
// or transport noise from an injected connection drop.
func retryableResidue(err error) bool {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Temporary()
	}
	// Not an API error: transport-level (connection drop mid-response)
	// or an open breaker; both expected under injected faults.
	return true
}
