// Package client is a typed Go client for the clsacim evaluation
// service (package serve / cmd/clsaserved). It speaks the JSON wire
// schema defined in package serve and returns the same typed errors a
// local Engine would: a 404 from the daemon satisfies
// errors.Is(err, clsacim.ErrUnknownModel), and deadline expiry
// surfaces as context.DeadlineExceeded, so code can move between
// in-process and remote evaluation without changing its error
// handling. All methods honor the passed context; use
// clsacim.Request.TimeoutMillis to additionally bound a single request
// server-side.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"clsacim"
	"clsacim/serve"
)

// Client calls one clsaserved daemon. Construct with New; the zero
// value is not usable. A Client is safe for concurrent use.
//
// By default every call is a single attempt. WithRetry adds budgeted
// exponential-backoff retries for temporary failures, and
// WithCircuitBreaker stops hammering a daemon that keeps failing; both
// compose (the breaker gates each attempt of the retry loop).
type Client struct {
	base    *url.URL
	http    *http.Client
	retry   *retryState
	breaker *breaker
}

// Option configures a Client at construction time.
type Option func(*Client) error

// WithHTTPClient substitutes the underlying *http.Client (default
// http.DefaultClient). Use it for custom transports, TLS, or
// client-side timeouts.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) error {
		if hc == nil {
			return errors.New("client: nil http client")
		}
		c.http = hc
		return nil
	}
}

// New builds a Client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	c := &Client{base: u, http: http.DefaultClient}
	for _, opt := range opts {
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// APIError is a non-2xx response from the daemon. It carries the HTTP
// status, the server's error message, and the machine-readable error
// code from the service's JSON envelope (serve.ErrorResponse.Code).
// The code maps back onto the package-level sentinel errors:
// errors.Is(err, clsacim.ErrUnknownModel) holds for unknown-model
// failures and errors.Is(err, context.DeadlineExceeded) for expired
// request deadlines. Responses without the envelope — a plain-text 404
// from a misconfigured base URL, an intermediary proxy error — stay
// bare *APIErrors, so a wrong path is never misdiagnosed as a missing
// model.
type APIError struct {
	StatusCode int
	Message    string
	// Code is the serve.Code* constant the daemon attached, "" when
	// the response carried no envelope or no code.
	Code string
	// RequestID echoes the response's X-Request-ID header (also in the
	// JSON envelope) for correlating the failure with daemon logs.
	RequestID string
	// RetryAfter is the response's Retry-After delay (0 when absent):
	// how long an admission gate or shutting-down daemon asked this
	// client to wait. WithRetry honors it when it exceeds the computed
	// backoff.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.StatusCode, e.Message)
}

// Is maps the service's error codes onto the sentinel errors a local
// Engine would return, so error handling is transport-agnostic.
func (e *APIError) Is(target error) bool {
	switch e.Code {
	case serve.CodeUnknownModel:
		return target == clsacim.ErrUnknownModel
	case serve.CodeDeadlineExceeded:
		return target == context.DeadlineExceeded
	case serve.CodeCanceled:
		return target == context.Canceled
	}
	return false
}

// Evaluate submits one request to POST /v1/evaluate.
func (c *Client) Evaluate(ctx context.Context, req clsacim.Request) (*serve.Evaluation, error) {
	var ev serve.Evaluation
	if err := c.post(ctx, "/v1/evaluate", req, &ev); err != nil {
		return nil, err
	}
	return &ev, nil
}

// EvaluateBatch submits requests to POST /v1/evaluate/batch. Results
// are positionally aligned with reqs; per-request failures are
// reported in BatchResult.Error without failing the call.
func (c *Client) EvaluateBatch(ctx context.Context, reqs []clsacim.Request) ([]serve.BatchResult, error) {
	var resp serve.BatchResponse
	if err := c.post(ctx, "/v1/evaluate/batch", serve.BatchRequest{Requests: reqs}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(reqs) {
		return nil, fmt.Errorf("client: server returned %d results for %d requests", len(resp.Results), len(reqs))
	}
	return resp.Results, nil
}

// Stream submits one streamed multi-inference evaluation to
// POST /v1/stream.
func (c *Client) Stream(ctx context.Context, req clsacim.StreamRequest) (*serve.StreamResponse, error) {
	var resp serve.StreamResponse
	if err := c.post(ctx, "/v1/stream", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Models fetches GET /v1/models: what the daemon can evaluate.
func (c *Client) Models(ctx context.Context) (*serve.ModelsResponse, error) {
	var resp serve.ModelsResponse
	if err := c.get(ctx, "/v1/models", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches GET /v1/stats: the daemon's engine cache counters and
// HTTP accounting.
func (c *Client) Stats(ctx context.Context) (*serve.StatsResponse, error) {
	var resp serve.StatsResponse
	if err := c.get(ctx, "/v1/stats", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health probes GET /healthz, returning nil when the daemon is up.
func (c *Client) Health(ctx context.Context) error {
	req, err := c.newRequest(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: health check: %w", err)
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(readBody(resp.Body))}
	}
	return nil
}

func (c *Client) post(ctx context.Context, path string, body, dst any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	return c.roundTrip(ctx, http.MethodPost, path, b, dst)
}

func (c *Client) get(ctx context.Context, path string, dst any) error {
	return c.roundTrip(ctx, http.MethodGet, path, nil, dst)
}

// doOnce performs a single attempt: build the request from the body
// bytes, execute, decode.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, dst any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := c.newRequest(ctx, method, path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.do(req, dst)
}

func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	u := *c.base
	u.Path = strings.TrimRight(u.Path, "/") + path
	req, err := http.NewRequestWithContext(ctx, method, u.String(), body)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	return req, nil
}

// do executes the request and decodes the JSON response into dst,
// translating non-2xx statuses into *APIError.
func (c *Client) do(req *http.Request, dst any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer drain(resp.Body)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := readBody(resp.Body)
		code, reqID := "", ""
		var apiErr serve.ErrorResponse
		if json.Unmarshal([]byte(msg), &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
			code = apiErr.Code
			reqID = apiErr.RequestID
		}
		if reqID == "" {
			reqID = resp.Header.Get(serve.RequestIDHeader)
		}
		return &APIError{
			StatusCode: resp.StatusCode,
			Message:    strings.TrimSpace(msg),
			Code:       code,
			RequestID:  reqID,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", req.URL.Path, err)
	}
	return nil
}

// parseRetryAfter parses the delay-seconds form of Retry-After (the
// only form the daemon emits); the HTTP-date form and garbage map to 0.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// readBody reads a bounded prefix of the body for error reporting.
func readBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 64<<10))
	return string(b)
}

// drain discards the rest of the body so the connection can be reused,
// then closes it.
func drain(rc io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(rc, 64<<10))
	rc.Close()
}
