package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"clsacim/serve"
)

// ErrCircuitOpen is returned without touching the network while the
// client's circuit breaker is open: the daemon failed too many
// consecutive calls and the cooldown has not elapsed. The condition is
// temporary by construction, so errors.Is(err, ErrCircuitOpen) callers
// typically back off and try again later.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// RetryPolicy configures automatic retries (WithRetry). Every endpoint
// of the evaluation service is a pure computation — re-submitting a
// request cannot double-apply anything — so the client retries all
// methods, but only on errors that are plausibly transient: transport
// failures (connection refused/reset, broken proxies) and responses
// whose APIError.Temporary reports true (429, 502, 503, 504, and 500
// with the "internal" code). A 400 or 404 is never retried.
//
// Backoff is exponential with full jitter: attempt k sleeps a uniform
// random duration in [0, min(MaxDelay, BaseDelay·2^k)). When the
// response carried a longer Retry-After, that wins — the server knows
// its own recovery time better than the client's jitter does.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries per call, first included
	// (default 4). 1 disables retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 2s).
	MaxDelay time.Duration
	// Budget bounds retries across the whole client, token-bucket
	// style (default 10): each retry spends one token, each successful
	// call earns half a token back, up to Budget. When the bucket is
	// empty, calls fail on their first error instead of amplifying an
	// outage with synchronized retry storms.
	Budget float64
	// Seed fixes the jitter RNG for reproducible tests; 0 seeds from
	// the clock.
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Budget == 0 {
		p.Budget = 10
	}
	if p.Seed == 0 {
		p.Seed = uint64(time.Now().UnixNano())
	}
	return p
}

// WithRetry enables automatic retries with exponential backoff, full
// jitter, and a client-wide retry budget. See RetryPolicy for the
// exact semantics; zero fields take the documented defaults.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) error {
		if p.MaxAttempts < 0 || p.BaseDelay < 0 || p.MaxDelay < 0 || p.Budget < 0 {
			return fmt.Errorf("client: invalid retry policy %+v", p)
		}
		p = p.withDefaults()
		c.retry = &retryState{policy: p, tokens: p.Budget, rng: p.Seed}
		return nil
	}
}

// WithCircuitBreaker trips the client open after threshold consecutive
// temporary failures: calls then fail immediately with ErrCircuitOpen
// (no network traffic) until cooldown has elapsed, after which a single
// probe request is let through — success closes the circuit, failure
// re-opens it for another cooldown. Non-temporary errors (a 400, an
// unknown model) do not count: the daemon answered, it just disliked
// the request.
func WithCircuitBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Client) error {
		if threshold <= 0 || cooldown <= 0 {
			return fmt.Errorf("client: invalid circuit breaker (threshold %d, cooldown %s)", threshold, cooldown)
		}
		c.breaker = &breaker{threshold: threshold, cooldown: cooldown}
		return nil
	}
}

// retryState is the mutable half of the retry configuration: the token
// bucket and the jitter RNG, both under one mutex.
type retryState struct {
	policy RetryPolicy

	mu     sync.Mutex
	tokens float64
	rng    uint64 // splitmix64 state
}

// spend takes one retry token, reporting false when the bucket cannot
// cover another retry.
func (rs *retryState) spend() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.tokens < 1 {
		return false
	}
	rs.tokens--
	return true
}

// credit earns back half a token after a successful call.
func (rs *retryState) credit() {
	rs.mu.Lock()
	rs.tokens += 0.5
	if rs.tokens > rs.policy.Budget {
		rs.tokens = rs.policy.Budget
	}
	rs.mu.Unlock()
}

// jitter draws a uniform duration in [0, d).
func (rs *retryState) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	rs.mu.Lock()
	rs.rng += 0x9e3779b97f4a7c15
	z := rs.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	rs.mu.Unlock()
	return time.Duration(z % uint64(d))
}

// backoff computes the sleep before retry number attempt (1-based),
// honoring the server's Retry-After when it asks for more patience.
func (rs *retryState) backoff(attempt int, last error) time.Duration {
	d := rs.policy.BaseDelay << (attempt - 1)
	if d <= 0 || d > rs.policy.MaxDelay {
		d = rs.policy.MaxDelay
	}
	d = rs.jitter(d)
	var apiErr *APIError
	if errors.As(last, &apiErr) && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
	}
	return d
}

// breaker is a consecutive-failure circuit breaker.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	failures int
	open     bool
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// allow reports whether a call may proceed, transitioning open →
// half-open once the cooldown has elapsed (the caller becomes the
// probe).
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return nil
	}
	if time.Since(b.openedAt) < b.cooldown || b.probing {
		return ErrCircuitOpen
	}
	b.probing = true
	return nil
}

// record feeds a call's outcome back. success means the daemon
// answered coherently — a non-temporary API error counts as success
// here, because the server is demonstrably responsive.
func (b *breaker) record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.open = false
		b.probing = false
		b.failures = 0
		return
	}
	if b.probing {
		// The half-open probe failed: re-open for another cooldown.
		b.probing = false
		b.openedAt = time.Now()
		return
	}
	b.failures++
	if !b.open && b.failures >= b.threshold {
		b.open = true
		b.openedAt = time.Now()
	}
}

// temporary classifies an error as plausibly transient. Transport
// failures are temporary (the connection may come back); API errors
// delegate to APIError.Temporary; context expiry and encoding bugs are
// not.
func temporary(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Temporary()
	}
	// Anything else that made it past request building is a transport
	// or decode failure; decode failures after a 2xx are rare enough
	// that retrying them is harmless and retrying resets (EOF,
	// connection reset mid-body) is the point.
	return true
}

// roundTrip executes one logical API call: the retry loop, the budget,
// and the circuit breaker around doOnce. body is re-wrapped into a
// fresh request each attempt, so retries never resend a drained
// reader.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte, dst any) error {
	maxAttempts := 1
	if c.retry != nil {
		maxAttempts = c.retry.policy.MaxAttempts
	}
	var err error
	for attempt := 1; ; attempt++ {
		if c.breaker != nil {
			if berr := c.breaker.allow(); berr != nil {
				return berr
			}
		}
		err = c.doOnce(ctx, method, path, body, dst)
		temp := temporary(err)
		if c.breaker != nil {
			c.breaker.record(!temp)
		}
		if err == nil {
			if c.retry != nil {
				c.retry.credit()
			}
			return nil
		}
		if !temp || attempt >= maxAttempts {
			return err
		}
		if !c.retry.spend() {
			return err
		}
		if serr := c.sleep(ctx, c.retry.backoff(attempt, err)); serr != nil {
			return serr
		}
	}
}

// sleep waits for d, honoring ctx.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Temporary reports whether the failure is plausibly transient and the
// same request may succeed on retry: 429 (shed, queue full), 502/504
// (intermediary trouble), 503 (shed, injected faults, shutdown), and
// 500 carrying the "internal" code (a recovered handler panic — the
// daemon survived and the next attempt gets a fresh handler). Client
// mistakes (400, 404, unknown model) are permanent.
func (e *APIError) Temporary() bool {
	switch e.StatusCode {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	case http.StatusInternalServerError:
		return e.Code == serve.CodeInternal
	}
	return false
}
