package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"clsacim"
	"clsacim/serve"
)

func TestAPIErrorTemporary(t *testing.T) {
	cases := []struct {
		status int
		code   string
		want   bool
	}{
		{http.StatusTooManyRequests, serve.CodeOverloaded, true},
		{http.StatusServiceUnavailable, serve.CodeOverloaded, true},
		{http.StatusServiceUnavailable, "", true},
		{http.StatusBadGateway, "", true},
		{http.StatusGatewayTimeout, "", true},
		{http.StatusInternalServerError, serve.CodeInternal, true},
		{http.StatusInternalServerError, "", false}, // unclassified 500: a proxy page, not our envelope
		{http.StatusBadRequest, "", false},
		{http.StatusNotFound, serve.CodeUnknownModel, false},
	}
	for _, tc := range cases {
		e := &APIError{StatusCode: tc.status, Code: tc.code}
		if got := e.Temporary(); got != tc.want {
			t.Errorf("Temporary(%d, %q) = %v, want %v", tc.status, tc.code, got, tc.want)
		}
	}
}

func TestBackoffBoundsAndRetryAfter(t *testing.T) {
	rs := &retryState{
		policy: RetryPolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 200 * time.Millisecond}.withDefaults(),
		rng:    7,
	}
	for attempt := 1; attempt <= 6; attempt++ {
		cap := rs.policy.BaseDelay << (attempt - 1)
		if cap > rs.policy.MaxDelay || cap <= 0 {
			cap = rs.policy.MaxDelay
		}
		for i := 0; i < 100; i++ {
			if d := rs.backoff(attempt, errors.New("transport")); d < 0 || d >= cap {
				t.Fatalf("attempt %d: backoff %v outside [0, %v)", attempt, d, cap)
			}
		}
	}
	// A server-provided Retry-After longer than the jittered delay wins.
	err := &APIError{StatusCode: 429, RetryAfter: 3 * time.Second}
	if d := rs.backoff(1, err); d != 3*time.Second {
		t.Errorf("backoff with Retry-After = %v, want 3s", d)
	}
}

func TestRetryBudgetSpendAndCredit(t *testing.T) {
	rs := &retryState{policy: RetryPolicy{Budget: 2}.withDefaults(), tokens: 2}
	if !rs.spend() || !rs.spend() {
		t.Fatal("budget of 2 refused its first two retries")
	}
	if rs.spend() {
		t.Fatal("empty budget allowed a retry")
	}
	rs.credit()
	if rs.spend() {
		t.Fatal("half a token allowed a retry")
	}
	rs.credit()
	if !rs.spend() {
		t.Fatal("a full credited token refused a retry")
	}
	for i := 0; i < 10; i++ {
		rs.credit()
	}
	rs.mu.Lock()
	tokens := rs.tokens
	rs.mu.Unlock()
	if tokens > rs.policy.Budget {
		t.Errorf("tokens %g exceed budget %g", tokens, rs.policy.Budget)
	}
}

func TestBreakerTransitions(t *testing.T) {
	b := &breaker{threshold: 3, cooldown: 20 * time.Millisecond}
	for i := 0; i < 2; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("closed breaker refused call %d: %v", i, err)
		}
		b.record(false)
	}
	// A success resets the consecutive count.
	b.record(true)
	b.record(false)
	b.record(false)
	if err := b.allow(); err != nil {
		t.Fatal("breaker opened before threshold consecutive failures")
	}
	b.record(false) // third consecutive: opens
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker allowed a call (err %v)", err)
	}
	time.Sleep(25 * time.Millisecond)
	// Half-open: exactly one probe at a time.
	if err := b.allow(); err != nil {
		t.Fatalf("half-open breaker refused the probe: %v", err)
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	b.record(false) // probe failed: open again for a full cooldown
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("breaker closed after a failed probe")
	}
	time.Sleep(25 * time.Millisecond)
	if err := b.allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.record(true) // probe succeeded: closed
	if err := b.allow(); err != nil {
		t.Fatalf("breaker still open after successful probe: %v", err)
	}
}

// flakyServer fails the first n requests with status, then serves a
// valid evaluation envelope.
func flakyServer(t *testing.T, n int, status int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c := calls.Add(1)
		if c <= int64(n) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "flaky", Code: serve.CodeOverloaded})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.Evaluation{Speedup: 1})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func newRetryClient(t *testing.T, url string, opts ...Option) *Client {
	t.Helper()
	opts = append([]Option{WithRetry(RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Budget: 100, Seed: 42,
	})}, opts...)
	c, err := New(url, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	srv, calls := flakyServer(t, 2, http.StatusServiceUnavailable, "")
	c := newRetryClient(t, srv.URL)
	ev, err := c.Evaluate(context.Background(), clsacim.Request{Model: "tinyconvnet"})
	if err != nil {
		t.Fatalf("evaluate through flaky server: %v", err)
	}
	if ev.Speedup != 1 {
		t.Errorf("decoded speedup = %g", ev.Speedup)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (2 failures + success)", got)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	srv, calls := flakyServer(t, 100, http.StatusServiceUnavailable, "")
	c := newRetryClient(t, srv.URL)
	_, err := c.Evaluate(context.Background(), clsacim.Request{Model: "tinyconvnet"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the final 503", err)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("server saw %d calls, want MaxAttempts=4", got)
	}
}

func TestPermanentErrorsAreNotRetried(t *testing.T) {
	srv, calls := flakyServer(t, 100, http.StatusBadRequest, "")
	c := newRetryClient(t, srv.URL)
	_, err := c.Evaluate(context.Background(), clsacim.Request{Model: "tinyconvnet"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want the 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (no retry of a 400)", got)
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	srv, _ := flakyServer(t, 1, http.StatusTooManyRequests, "1")
	c := newRetryClient(t, srv.URL)
	start := time.Now()
	if _, err := c.Evaluate(context.Background(), clsacim.Request{Model: "tinyconvnet"}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("retried after %v, want >= the 1s Retry-After", elapsed)
	}
}

func TestRetryBudgetStopsRetryStorm(t *testing.T) {
	srv, calls := flakyServer(t, 1000, http.StatusServiceUnavailable, "")
	c, err := New(srv.URL, WithRetry(RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Budget: 2, Seed: 1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	// First call: 1 try + 2 budgeted retries. Later calls: no budget
	// left, single attempts.
	for i := 0; i < 3; i++ {
		if _, err := c.Evaluate(context.Background(), clsacim.Request{Model: "tinyconvnet"}); err == nil {
			t.Fatal("evaluate succeeded against an always-failing server")
		}
	}
	if got := calls.Load(); got != 5 {
		t.Errorf("server saw %d calls, want 5 (3+1+1: budget spent on call one)", got)
	}
}

func TestCircuitBreakerFailsFastEndToEnd(t *testing.T) {
	srv, calls := flakyServer(t, 1000, http.StatusServiceUnavailable, "")
	c, err := New(srv.URL,
		WithRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Budget: 100, Seed: 1}),
		WithCircuitBreaker(3, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	// 3 temporary failures trip the breaker (the first call's attempt
	// pair plus the second call's first attempt).
	c.Evaluate(context.Background(), clsacim.Request{Model: "tinyconvnet"})
	c.Evaluate(context.Background(), clsacim.Request{Model: "tinyconvnet"})
	seen := calls.Load()
	if seen != 3 {
		t.Fatalf("server saw %d calls before trip, want 3", seen)
	}
	_, err = c.Evaluate(context.Background(), clsacim.Request{Model: "tinyconvnet"})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != seen {
		t.Error("open breaker still sent traffic")
	}
}

func TestRetryRespectsContext(t *testing.T) {
	srv, _ := flakyServer(t, 1000, http.StatusServiceUnavailable, "")
	c, err := New(srv.URL, WithRetry(RetryPolicy{
		MaxAttempts: 100, BaseDelay: 50 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Budget: 1000, Seed: 1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = c.Evaluate(ctx, clsacim.Request{Model: "tinyconvnet"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestAPIErrorCarriesRetryAfterAndRequestID(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.Header().Set(serve.RequestIDHeader, "rid-1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "busy", Code: serve.CodeOverloaded, RequestID: "rid-1"})
	}))
	defer srv.Close()
	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Evaluate(context.Background(), clsacim.Request{Model: "tinyconvnet"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want 7s", apiErr.RetryAfter)
	}
	if apiErr.RequestID != "rid-1" {
		t.Errorf("RequestID = %q, want rid-1", apiErr.RequestID)
	}
	if !apiErr.Temporary() {
		t.Error("429 not Temporary")
	}
}
