package clsacim

import (
	"context"
	"strings"
	"testing"
)

// coarseStreamEngine keeps stream tests fast: coarse Stage I
// granularity, full validation through the engine-independent
// check.Stream oracle.
func coarseStreamEngine(t *testing.T) *Engine {
	t.Helper()
	return MustNew(WithTargetSets(26), WithValidation())
}

// The acceptance criterion of the subsystem: pipelined steady-state
// throughput strictly greater than 1/makespan of a single inference
// for tinyyolov4 under xinf.
func TestEvaluateStreamPipelinedThroughputBeatsSingleRate(t *testing.T) {
	e := coarseStreamEngine(t)
	res, err := e.EvaluateStream(context.Background(), StreamRequest{
		Models:     []StreamModel{{Model: "tinyyolov4"}},
		Inferences: 8,
		Mode:       ModeCrossLayer,
		Arrival:    ArrivalProcess{Kind: "closed", Concurrency: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerModel) != 1 {
		t.Fatalf("got %d per-model results, want 1", len(res.PerModel))
	}
	pm := res.PerModel[0]
	if pm.SingleRatePerSec <= 0 {
		t.Fatalf("no single-inference reference rate: %+v", pm)
	}
	if res.ThroughputPerSec <= pm.SingleRatePerSec {
		t.Fatalf("streamed throughput %.2f/s not above single-inference rate %.2f/s",
			res.ThroughputPerSec, pm.SingleRatePerSec)
	}
	if res.Latency.P99Nanos < res.Latency.P50Nanos || res.Latency.MaxNanos < res.Latency.P99Nanos {
		t.Fatalf("latency percentiles out of order: %+v", res.Latency)
	}
	if res.PEUtilization <= 0 || res.PEUtilization > 1 {
		t.Fatalf("fabric utilization %g out of range", res.PEUtilization)
	}
	if len(res.UtilizationPerPE) != res.FabricPEs {
		t.Fatalf("per-PE utilization has %d entries for %d PEs", len(res.UtilizationPerPE), res.FabricPEs)
	}
	if len(res.Jobs) != 8 || res.Inferences != 8 {
		t.Fatalf("served %d/%d inferences", len(res.Jobs), res.Inferences)
	}
}

// With a single inference in flight the stream degenerates to serial
// execution and throughput equals the single-inference rate.
func TestEvaluateStreamSerialMatchesSingleRate(t *testing.T) {
	e := coarseStreamEngine(t)
	res, err := e.EvaluateStream(context.Background(), StreamRequest{
		Models:     []StreamModel{{Model: "tinyyolov4"}},
		Inferences: 3,
		Mode:       ModeCrossLayer,
		Arrival:    ArrivalProcess{Concurrency: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	pm := res.PerModel[0]
	if res.MakespanCycles != 3*pm.SingleMakespanCycles {
		t.Fatalf("serial stream makespan %d, want %d", res.MakespanCycles, 3*pm.SingleMakespanCycles)
	}
}

// Two models co-scheduled on one shared pool must pass the full
// cross-inference invariant set (WithValidation wires check.Stream
// through the stream path).
func TestEvaluateStreamSharedPoolTwoModels(t *testing.T) {
	e := coarseStreamEngine(t)
	res, err := e.EvaluateStream(context.Background(), StreamRequest{
		Models:     []StreamModel{{Model: "tinyyolov4"}, {Model: "tinyyolov3"}},
		Inferences: 6,
		Mode:       ModeCrossLayer,
		Arrival:    ArrivalProcess{Kind: "poisson", Seed: 11, RatePerSec: 2000},
		SharedPool: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, pm := range res.PerModel {
		total += pm.Inferences
	}
	if total != 6 {
		t.Fatalf("per-model inference counts sum to %d, want 6", total)
	}
	if len(res.QueueDepth) == 0 {
		t.Fatal("no queue-depth trace")
	}
	// Disjoint pools must also validate and use the summed fabric.
	res2, err := e.EvaluateStream(context.Background(), StreamRequest{
		Models:     []StreamModel{{Model: "tinyyolov4"}, {Model: "tinyyolov3"}},
		Inferences: 4,
		Mode:       ModeCrossLayer,
		Arrival:    ArrivalProcess{Kind: "bursty", Seed: 5, RatePerSec: 4000, MeanOnMillis: 2, MeanOffMillis: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.FabricPEs <= res.FabricPEs {
		t.Fatalf("disjoint fabric %d not larger than shared fabric %d", res2.FabricPEs, res.FabricPEs)
	}
}

// The CI smoke configuration: a short closed-loop run under full
// validation (also exercised with -race by the workflow).
func TestEvaluateStreamSmoke(t *testing.T) {
	e := coarseStreamEngine(t)
	res, err := e.EvaluateStream(context.Background(), StreamRequest{
		Models:     []StreamModel{{Model: "tinyyolov4"}},
		Inferences: 32,
		Mode:       ModeCrossLayer,
		Arrival:    ArrivalProcess{Kind: "closed", Concurrency: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inferences != 32 {
		t.Fatalf("served %d inferences, want 32", res.Inferences)
	}
	st := e.Stats()
	if st.StreamEvaluations != 1 || st.StreamInferences != 32 {
		t.Fatalf("stream counters %d/%d, want 1/32", st.StreamEvaluations, st.StreamInferences)
	}
}

func TestEvaluateStreamGateBoundsConcurrency(t *testing.T) {
	e := coarseStreamEngine(t)
	req := StreamRequest{
		Models:      []StreamModel{{Model: "tinyyolov4"}},
		Inferences:  4,
		Mode:        ModeCrossLayer,
		Arrival:     ArrivalProcess{Concurrency: 4},
		MaxInFlight: 1,
	}
	res, err := e.EvaluateStream(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	pm := res.PerModel[0]
	if res.MakespanCycles != 4*pm.SingleMakespanCycles {
		t.Fatalf("gated stream makespan %d, want serial %d", res.MakespanCycles, 4*pm.SingleMakespanCycles)
	}
}

func TestEvaluateStreamRejectsBadRequests(t *testing.T) {
	e := coarseStreamEngine(t)
	cases := []struct {
		name string
		req  StreamRequest
		want string
	}{
		{"no models", StreamRequest{Inferences: 1}, "no models"},
		{"unknown model", StreamRequest{Models: []StreamModel{{Model: "nope"}}, Inferences: 1}, "unknown model"},
		{"no inferences", StreamRequest{Models: []StreamModel{{Model: "tinyyolov4"}}}, "positive inference count"},
		{"bad arrival", StreamRequest{Models: []StreamModel{{Model: "tinyyolov4"}}, Inferences: 1,
			Arrival: ArrivalProcess{Kind: "zipf"}}, "unknown arrival kind"},
		{"bad rate", StreamRequest{Models: []StreamModel{{Model: "tinyyolov4"}}, Inferences: 1,
			Arrival: ArrivalProcess{Kind: "poisson"}}, "positive rate"},
		{"negative gate", StreamRequest{Models: []StreamModel{{Model: "tinyyolov4"}}, Inferences: 1,
			MaxInFlight: -1}, "negative MaxInFlight"},
	}
	for _, tc := range cases {
		if _, err := e.EvaluateStream(context.Background(), tc.req); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want %q", tc.name, err, tc.want)
		}
	}
}

// Virtualized compilations cannot stream: weights must stay resident.
func TestEvaluateStreamRejectsVirtualized(t *testing.T) {
	e := MustNew(WithTargetSets(26), WithVirtualization(0, 0))
	_, err := e.EvaluateStream(context.Background(), StreamRequest{
		Models:     []StreamModel{{Model: "tinyyolov4", TotalPEs: 64}},
		Inferences: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "weight residency") {
		t.Fatalf("got %v, want a residency error", err)
	}
}

// Identical requests must produce identical results (deterministic
// arrivals, deterministic engine).
func TestEvaluateStreamDeterministic(t *testing.T) {
	e := coarseStreamEngine(t)
	req := StreamRequest{
		Models:     []StreamModel{{Model: "tinyyolov4"}},
		Inferences: 6,
		Mode:       ModeWindow(2),
		Arrival:    ArrivalProcess{Kind: "poisson", Seed: 77, RatePerSec: 5000},
	}
	a, err := e.EvaluateStream(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.EvaluateStream(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanCycles != b.MakespanCycles || a.Latency != b.Latency {
		t.Fatalf("nondeterministic stream: %v vs %v", a.MakespanCycles, b.MakespanCycles)
	}
	for j := range a.Jobs {
		if a.Jobs[j] != b.Jobs[j] {
			t.Fatalf("job %d differs: %+v vs %+v", j, a.Jobs[j], b.Jobs[j])
		}
	}
}

// Stream accounting regression: the engine's StreamInferences counter,
// StreamResult.Inferences, and the served job list must agree, and
// stream compilations must feed the same hit/partial-hit accounting as
// ordinary evaluations.
func TestEvaluateStreamStatsCountServedJobs(t *testing.T) {
	e := coarseStreamEngine(t)
	req := StreamRequest{
		Models:     []StreamModel{{Model: "tinyyolov4"}},
		Inferences: 6,
		Mode:       ModeCrossLayer,
		Arrival:    ArrivalProcess{Kind: "closed", Concurrency: 2},
	}
	res, err := e.EvaluateStream(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if res.Inferences != len(res.Jobs) {
		t.Errorf("result inferences %d != served jobs %d", res.Inferences, len(res.Jobs))
	}
	if s.StreamInferences != int64(res.Inferences) {
		t.Errorf("engine StreamInferences %d != result inferences %d", s.StreamInferences, res.Inferences)
	}
	if s.StreamEvaluations != 1 {
		t.Errorf("StreamEvaluations = %d, want 1", s.StreamEvaluations)
	}
	// First stream compiled fresh: no hits yet.
	if s.CacheHits != 0 || s.PartialHits != 0 {
		t.Errorf("after cold stream: hits=%d partial=%d, want 0/0", s.CacheHits, s.PartialHits)
	}
	// A second stream over the same key and mode is a full cache hit:
	// the first stream cached the mode's timeline through its
	// single-rate reference schedule.
	if _, err := e.EvaluateStream(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	s2 := e.Stats()
	if s2.CacheHits != 1 || s2.PartialHits != 0 {
		t.Errorf("after warm stream: hits=%d partial=%d, want 1/0", s2.CacheHits, s2.PartialHits)
	}
	if s2.StreamInferences != 2*int64(res.Inferences) {
		t.Errorf("StreamInferences = %d after two streams of %d", s2.StreamInferences, res.Inferences)
	}
	// Streaming the same key under a new mode is a partial hit: cached
	// compile, uncached timeline — the accounting Evaluate uses, which
	// EvaluateStream bypassed before routing through compileCounted.
	lbl := req
	lbl.Mode = ModeLayerByLayer
	if _, err := e.EvaluateStream(context.Background(), lbl); err != nil {
		t.Fatal(err)
	}
	if s3 := e.Stats(); s3.CacheHits != 2 || s3.PartialHits != 1 {
		t.Errorf("after new-mode stream: hits=%d partial=%d, want 2/1", s3.CacheHits, s3.PartialHits)
	}
}
