package clsacim

import (
	"bytes"
	"strings"
	"testing"
)

func load(t *testing.T, name string) *Model {
	t.Helper()
	m, err := LoadModel(name, ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLoadModelUnknown(t *testing.T) {
	if _, err := LoadModel("nonexistent", ModelOptions{}); err == nil {
		t.Error("unknown model loaded")
	}
}

func TestModelLists(t *testing.T) {
	want := map[string]bool{"tinyyolov4": true, "resnet152": true}
	for _, name := range Models() {
		delete(want, name)
	}
	if len(want) != 0 {
		t.Errorf("Models() missing %v", want)
	}
	all := AllModels()
	if len(all) <= len(Models()) {
		t.Error("AllModels must include the synthetic test networks")
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Error("AllModels not sorted")
		}
	}
}

func TestCompileDefaults(t *testing.T) {
	c, err := Compile(load(t, "tinyyolov4"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.PEmin() != 117 || c.TotalPEs() != 117 || c.PEsUsed() != 117 {
		t.Errorf("PEmin/Total/Used = %d/%d/%d", c.PEmin(), c.TotalPEs(), c.PEsUsed())
	}
	if c.BaseLayerCount() != 21 {
		t.Errorf("base layers = %d", c.BaseLayerCount())
	}
	h, w, ch := c.InputShape()
	if h != 416 || w != 416 || ch != 3 {
		t.Errorf("input = (%d,%d,%d)", h, w, ch)
	}
	if c.NumSets() == 0 || c.NumDepEdges() == 0 {
		t.Error("empty stage I/II structures")
	}
}

func TestCompileConfigErrors(t *testing.T) {
	m := load(t, "tinyyolov4")
	if _, err := Compile(m, Config{Solver: "magic", WeightDuplication: true}); err == nil {
		t.Error("unknown solver accepted")
	}
	if _, err := Compile(m, Config{TotalPEs: 10}); err == nil {
		t.Error("under-provisioned TotalPEs accepted")
	}
}

func TestTotalPEsOverride(t *testing.T) {
	c, err := Compile(load(t, "tinyyolov4"), Config{TotalPEs: 200, WeightDuplication: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalPEs() != 200 {
		t.Errorf("TotalPEs = %d, want 200", c.TotalPEs())
	}
	if c.PEsUsed() > 200 {
		t.Errorf("used %d > 200", c.PEsUsed())
	}
}

func TestScheduleBothModes(t *testing.T) {
	c, err := Compile(load(t, "tinyyolov4"), Config{ExtraPEs: 16, WeightDuplication: true, TargetSets: 26})
	if err != nil {
		t.Fatal(err)
	}
	lbl, err := c.Schedule(ModeLayerByLayer)
	if err != nil {
		t.Fatal(err)
	}
	xinf, err := c.Schedule(ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	if xinf.MakespanCycles >= lbl.MakespanCycles {
		t.Errorf("xinf %d >= lbl %d", xinf.MakespanCycles, lbl.MakespanCycles)
	}
	if xinf.Utilization <= lbl.Utilization {
		t.Errorf("xinf ut %v <= lbl ut %v", xinf.Utilization, lbl.Utilization)
	}
	if xinf.LatencyNanos != float64(xinf.MakespanCycles)*1400 {
		t.Errorf("latency %v != cycles*1400", xinf.LatencyNanos)
	}
	if len(xinf.Duplication) != 21 {
		t.Errorf("duplication vector length %d", len(xinf.Duplication))
	}
}

func TestEvaluate(t *testing.T) {
	ev, err := Evaluate(load(t, "tinyyolov3"), Config{ExtraPEs: 8, WeightDuplication: true, TargetSets: 26}, ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Speedup <= 1 {
		t.Errorf("speedup %v <= 1", ev.Speedup)
	}
	if ev.Baseline.F != ev.Baseline.PEmin {
		t.Error("baseline must run at F = PEmin")
	}
	rel := (ev.Speedup - ev.Eq3Speedup) / ev.Speedup
	if rel < -0.01 || rel > 0.01 {
		t.Errorf("Eq3 %.3f deviates from measured %.3f", ev.Eq3Speedup, ev.Speedup)
	}
	if ev.UtilizationGain <= 1 {
		t.Errorf("utilization gain %v <= 1", ev.UtilizationGain)
	}
}

func TestLayerTableMatchesTableI(t *testing.T) {
	c, err := Compile(load(t, "tinyyolov4"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows := c.LayerTable()
	if len(rows) != 21 {
		t.Fatalf("rows = %d", len(rows))
	}
	first := rows[0]
	if first.Name != "conv2d" || first.IFM != [3]int{417, 417, 3} ||
		first.OFM != [3]int{208, 208, 32} || first.PEs != 1 || first.Cycles != 43264 {
		t.Errorf("first row = %+v", first)
	}
	if first.Dup != 1 {
		t.Errorf("dup without wdup = %d", first.Dup)
	}
	total := 0
	for _, r := range rows {
		total += r.PEs
	}
	if total != 117 {
		t.Errorf("PE total = %d", total)
	}
}

func TestBuilderAPI(t *testing.T) {
	b, in := NewBuilder("net", 32, 32, 3)
	if h, w, c := in.Shape(); h != 32 || w != 32 || c != 3 {
		t.Errorf("input shape (%d,%d,%d)", h, w, c)
	}
	x := b.Conv2D(in, 8, 3, 1, true)
	x = b.ReLU(x)
	x = b.MaxPool(x, 2, 2)
	y := b.Conv2D(x, 8, 3, 1, true)
	y = b.LeakyReLU(y, 0.1)
	s := b.Add(x, y)
	u := b.UpSample(s, 2)
	cat := b.ConcatChannels(u, b.Conv2D(in, 8, 1, 1, false))
	b.Output(cat)
	m, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(m, Config{ExtraPEs: 4, WeightDuplication: true, TargetSets: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.BaseLayerCount() != 3 {
		t.Errorf("base layers = %d, want 3", c.BaseLayerCount())
	}
	// The same model must be compilable repeatedly (graph cloning).
	if _, err := Compile(m, Config{}); err != nil {
		t.Errorf("second compile failed: %v", err)
	}
}

func TestBuilderErrorPropagation(t *testing.T) {
	b, in := NewBuilder("bad", 8, 8, 3)
	a := b.Conv2D(in, 4, 3, 1, true)
	c := b.Conv2D(in, 4, 3, 2, true) // different spatial dims
	bad := b.Add(a, c)
	b.Output(bad)
	if _, err := b.Finish(); err == nil {
		t.Error("builder error not propagated")
	}
}

func TestBuilderNoOutput(t *testing.T) {
	b, in := NewBuilder("noout", 8, 8, 3)
	b.Conv2D(in, 4, 3, 1, true)
	if _, err := b.Finish(); err == nil {
		t.Error("output-less model accepted")
	}
}

func TestSimulateMatchesSchedule(t *testing.T) {
	c, err := Compile(load(t, "tinyyolov4"), Config{ExtraPEs: 16, WeightDuplication: true, TargetSets: 26})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ScheduleMode{ModeLayerByLayer, ModeCrossLayer} {
		rep, err := c.Schedule(mode)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := c.Simulate(mode)
		if err != nil {
			t.Fatal(err)
		}
		if sr.MakespanCycles != rep.MakespanCycles {
			t.Errorf("%v: sim %d != sched %d", mode, sr.MakespanCycles, rep.MakespanCycles)
		}
		if diff := sr.Utilization - rep.Utilization; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%v: sim ut %v != sched ut %v", mode, sr.Utilization, rep.Utilization)
		}
		if sr.PeakLiveElems <= 0 {
			t.Errorf("%v: no buffer pressure recorded", mode)
		}
		if len(sr.PEActive) != c.TotalPEs() {
			t.Errorf("%v: PEActive length %d", mode, len(sr.PEActive))
		}
	}
}

func TestRenderGanttOutput(t *testing.T) {
	c, err := Compile(load(t, "tinyyolov4"), Config{ExtraPEs: 16, WeightDuplication: true, TargetSets: 26})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Schedule(ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.RenderGantt(&buf, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"tinyyolov4", "wdup", "xinf", "conv2d"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt output missing %q", want)
		}
	}
}

func TestLayerSpans(t *testing.T) {
	c, err := Compile(load(t, "tinyyolov4"), Config{ExtraPEs: 16, WeightDuplication: true, TargetSets: 26})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Schedule(ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	spans := rep.LayerSpans()
	dups := 0
	for _, s := range spans {
		if s.End > rep.MakespanCycles || s.Start < 0 {
			t.Errorf("span %+v out of range", s)
		}
		if s.Active > s.End-s.Start {
			t.Errorf("span %+v: active exceeds wall time", s)
		}
		if s.DupCount > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Error("no duplicated spans despite wdup+16")
	}
}

func TestVerifyFunctionalRequiresWeights(t *testing.T) {
	if _, err := VerifyFunctional(load(t, "tinyconvnet"), 1, 4); err == nil {
		t.Error("shape-only model verified")
	}
}

func TestVerifyFunctionalToyModels(t *testing.T) {
	for _, name := range []string{"tinyconvnet", "tinybranchnet", "tinymlp"} {
		m, err := LoadModel(name, ModelOptions{WithWeights: true, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := VerifyFunctional(m, 3, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.MaxErrCanonicalization > 1e-5 {
			t.Errorf("%s: canonicalization error %v", name, rep.MaxErrCanonicalization)
		}
		if rep.MaxErrDuplication != 0 {
			t.Errorf("%s: duplication rewrite error %v (must be exact)", name, rep.MaxErrDuplication)
		}
		if rep.MaxErrCrossbar > 0.12*rep.OutputScale+0.05 {
			t.Errorf("%s: crossbar error %v vs scale %v", name, rep.MaxErrCrossbar, rep.OutputScale)
		}
		if rep.PEsProgrammed == 0 {
			t.Errorf("%s: no PEs programmed", name)
		}
	}
}

func TestCriticalPathFacade(t *testing.T) {
	c, err := Compile(load(t, "tinyyolov4"), Config{ExtraPEs: 32, WeightDuplication: true, TargetSets: 52})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Schedule(ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	path, err := rep.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	if path[len(path)-1].End != rep.MakespanCycles {
		t.Errorf("path ends at %d, makespan %d", path[len(path)-1].End, rep.MakespanCycles)
	}
	layers, err := rep.CriticalLayers()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, l := range layers {
		total += l.Cycles
	}
	if path[0].Start == 0 && total != rep.MakespanCycles {
		t.Errorf("per-layer path cycles %d != makespan %d", total, rep.MakespanCycles)
	}
}

func TestWriteScheduleJSONFacade(t *testing.T) {
	c, err := Compile(load(t, "tinyconvnet"), Config{TargetSets: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Schedule(ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteScheduleJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"makespan_cycles\"") {
		t.Error("JSON export missing makespan field")
	}
}

func TestScheduleModeString(t *testing.T) {
	if ModeCrossLayer.String() != "xinf" || ModeLayerByLayer.String() != "layer-by-layer" {
		t.Error("mode names wrong")
	}
}

func TestNoCAndGPEUCostsSlowDown(t *testing.T) {
	m := load(t, "vgg16")
	base, err := Evaluate(m, Config{ExtraPEs: 16, WeightDuplication: true, TargetSets: 52}, ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	noc, err := Evaluate(m, Config{ExtraPEs: 16, WeightDuplication: true, TargetSets: 52,
		NoCCyclesPerHop: 4}, ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	if noc.Result.MakespanCycles < base.Result.MakespanCycles {
		t.Error("NoC cost shortened the schedule")
	}
	gpeu, err := Evaluate(m, Config{ExtraPEs: 16, WeightDuplication: true, TargetSets: 52,
		GPEUCyclesPerKElem: 8}, ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	if gpeu.Result.MakespanCycles < base.Result.MakespanCycles {
		t.Error("GPEU cost shortened the schedule")
	}
}

func TestSolverVariantsCompile(t *testing.T) {
	m := load(t, "tinyyolov4")
	prev := int64(1 << 62)
	// none >= greedy >= ... each solver must at least not be wildly
	// worse than no duplication under xinf.
	for _, solver := range []string{"none", "greedy", "dp", "minmax"} {
		ev, err := Evaluate(m, Config{ExtraPEs: 32, WeightDuplication: solver != "none",
			Solver: solver, TargetSets: 52}, ModeCrossLayer)
		if err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		if solver == "none" {
			prev = ev.Result.MakespanCycles
			continue
		}
		if ev.Result.MakespanCycles > prev {
			t.Errorf("solver %s slower than no duplication: %d > %d",
				solver, ev.Result.MakespanCycles, prev)
		}
	}
}

// TestModeWindowFacade exercises the bounded xK family end to end
// through the public API: makespans are bracketed by the two extremes
// and monotone in K, the analytic schedule matches the event simulator,
// and the mode survives a Request JSON round trip.
func TestModeWindowFacade(t *testing.T) {
	c, err := Compile(load(t, "tinyyolov3"), Config{ExtraPEs: 16, WeightDuplication: true, TargetSets: 26})
	if err != nil {
		t.Fatal(err)
	}
	lbl, err := c.Schedule(ModeLayerByLayer)
	if err != nil {
		t.Fatal(err)
	}
	xinf, err := c.Schedule(ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	prev := lbl.MakespanCycles
	for _, k := range []int{1, 2, 4, 8} {
		mode := ModeWindow(k)
		rep, err := c.Schedule(mode)
		if err != nil {
			t.Fatal(err)
		}
		if rep.MakespanCycles > prev {
			t.Errorf("x%d makespan %d > previous %d (not monotone)", k, rep.MakespanCycles, prev)
		}
		if rep.MakespanCycles > lbl.MakespanCycles || rep.MakespanCycles < xinf.MakespanCycles {
			t.Errorf("x%d makespan %d outside [xinf %d, lbl %d]",
				k, rep.MakespanCycles, xinf.MakespanCycles, lbl.MakespanCycles)
		}
		sr, err := c.Simulate(mode)
		if err != nil {
			t.Fatal(err)
		}
		if sr.MakespanCycles != rep.MakespanCycles {
			t.Errorf("x%d: simulator makespan %d != schedule %d", k, sr.MakespanCycles, rep.MakespanCycles)
		}
		prev = rep.MakespanCycles
	}
	if x1, err := c.Schedule(ModeWindow(1)); err != nil {
		t.Errorf("x1 schedule failed: %v", err)
	} else if x1.MakespanCycles != lbl.MakespanCycles {
		t.Errorf("x1 makespan %d, want lbl %d", x1.MakespanCycles, lbl.MakespanCycles)
	}
	if ModeWindow(0) != ModeLayerByLayer {
		t.Error("ModeWindow(0) != ModeLayerByLayer")
	}
	if ModeWindow(4).Window() != 4 || ModeWindow(4).Name() != "x4" || ModeWindow(4).String() != "x4" {
		t.Error("ModeWindow(4) accessors wrong")
	}
}
