package clsacim

import "fmt"

// Option configures an Engine at construction time (see New). Options
// that describe the architecture set the Engine's default Config;
// per-request knobs (model, mapping, scheduling mode) belong in the
// Request instead.
type Option func(*Engine) error

// WithConfig adopts a full legacy Config as the Engine's defaults.
// Later options overlay it, so it composes with the With* helpers.
func WithConfig(cfg Config) Option {
	return func(e *Engine) error {
		e.base = cfg
		return nil
	}
}

// WithCrossbar sets the PE crossbar dimensions (default 256x256).
func WithCrossbar(rows, cols int) Option {
	return func(e *Engine) error {
		if rows <= 0 || cols <= 0 {
			return fmt.Errorf("clsacim: invalid crossbar %dx%d", rows, cols)
		}
		e.base.PERows, e.base.PECols = rows, cols
		return nil
	}
}

// WithTMVMNanos sets the MVM cycle latency in nanoseconds (default
// 1400, the paper's RRAM figure).
func WithTMVMNanos(ns float64) Option {
	return func(e *Engine) error {
		if ns < 0 {
			return fmt.Errorf("clsacim: negative tMVM %g", ns)
		}
		e.base.TMVMNanos = ns
		return nil
	}
}

// WithNoC charges data movement on dependency edges at the given mesh
// cycles per hop (0 keeps the paper's idealized zero-cost movement).
func WithNoC(cyclesPerHop float64) Option {
	return func(e *Engine) error {
		if cyclesPerHop < 0 {
			return fmt.Errorf("clsacim: negative NoC cost %g", cyclesPerHop)
		}
		e.base.NoCCyclesPerHop = cyclesPerHop
		return nil
	}
}

// WithGPEU charges non-base-layer processing at the given cycles per
// 1024 transferred elements (0 = idealized).
func WithGPEU(cyclesPerKElem float64) Option {
	return func(e *Engine) error {
		if cyclesPerKElem < 0 {
			return fmt.Errorf("clsacim: negative GPEU cost %g", cyclesPerKElem)
		}
		e.base.GPEUCyclesPerKElem = cyclesPerKElem
		return nil
	}
}

// WithEnergy enables the energy estimate: nanojoules per PE per MVM
// cycle, and per crossbar programming event (virtualization).
func WithEnergy(perMVMNanoJ, perWriteNanoJ float64) Option {
	return func(e *Engine) error {
		if perMVMNanoJ < 0 || perWriteNanoJ < 0 {
			return fmt.Errorf("clsacim: negative energy cost (%g, %g)", perMVMNanoJ, perWriteNanoJ)
		}
		e.base.EnergyPerMVMNanoJ = perMVMNanoJ
		e.base.EnergyPerWriteNanoJ = perWriteNanoJ
		return nil
	}
}

// WithTargetSets sets the Stage I granularity (sets per layer;
// 0 = finest alignment-respecting partition, the paper's default).
func WithTargetSets(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("clsacim: negative target sets %d", n)
		}
		e.base.TargetSets = n
		return nil
	}
}

// WithWeightBits sets the weight quantization width (default 8;
// negative disables quantization).
func WithWeightBits(bits int) Option {
	return func(e *Engine) error {
		e.base.WeightBits = bits
		return nil
	}
}

// WithPEsPerTile groups PEs into NoC tiles (default 4).
func WithPEsPerTile(n int) Option {
	return func(e *Engine) error {
		if n <= 0 {
			return fmt.Errorf("clsacim: invalid PEs per tile %d", n)
		}
		e.base.PEsPerTile = n
		return nil
	}
}

// WithSolver sets the default duplication solver for requests that
// enable weight duplication without naming one. The name is validated
// against the registry (plain and scored solvers) immediately.
func WithSolver(name string) Option {
	return func(e *Engine) error {
		if err := checkSolver(name); err != nil {
			return err
		}
		e.base.Solver = name
		return nil
	}
}

// WithSolverBudget sets the default evaluation budget of scored solvers
// ("search"): how many candidate duplication vectors may be scored by
// the coarse simulator per compile (0 = solver default). Budgets count
// evaluations rather than wall clock so results stay reproducible.
func WithSolverBudget(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("clsacim: negative solver budget %d", n)
		}
		e.base.SolverBudget = n
		return nil
	}
}

// WithSolverSeed sets the default RNG seed of scored solvers. A fixed
// (seed, budget) pair makes the "search" solver fully deterministic.
func WithSolverSeed(seed uint64) Option {
	return func(e *Engine) error {
		e.base.SolverSeed = seed
		return nil
	}
}

// WithVirtualization permits architectures below PEmin (paper §V-C
// future work): swapped layers time-share a PE pool and are reprogrammed
// before execution, at writeCyclesPerCrossbar MVM cycles per crossbar
// with the given programming parallelism. Zero values keep the defaults
// (512 cycles, 4-wide).
func WithVirtualization(writeCyclesPerCrossbar int64, parallelism int) Option {
	return func(e *Engine) error {
		if writeCyclesPerCrossbar < 0 || parallelism < 0 {
			return fmt.Errorf("clsacim: invalid virtualization cost (%d cycles, %d-wide)",
				writeCyclesPerCrossbar, parallelism)
		}
		e.base.WeightVirtualization = true
		e.base.WriteCyclesPerCrossbar = writeCyclesPerCrossbar
		e.base.WriteParallelism = parallelism
		return nil
	}
}

// WithValidation runs the engine-independent invariant checker
// (internal/check) on every timeline the Engine schedules: topological
// dependency order over the Stage II edge set, per-crossbar mutual
// exclusion, window admission legality, Stage III/IV active-cycle
// conservation, and makespan/metrics consistency. A violation fails the
// request with a typed error instead of returning wrong numbers.
// Validation costs roughly one extra pass over the timeline per
// schedule; production services normally leave it off and rely on the
// fuzz/CI coverage, while debugging and canary deployments turn it on.
func WithValidation() Option {
	return func(e *Engine) error {
		e.validate = true
		return nil
	}
}

// WithDegradation enables graceful degradation for every request, as
// if each carried AllowDegraded: an evaluation whose own deadline
// (Request.TimeoutMillis) expires before the full pipeline finishes is
// served by the coarse fast path and marked Degraded instead of
// failing with context.DeadlineExceeded. See Request.AllowDegraded for
// the exact semantics and what a degraded result omits.
func WithDegradation() Option {
	return func(e *Engine) error {
		e.degraded = true
		return nil
	}
}

// WithWorkers bounds the EvaluateBatch worker pool (default
// runtime.GOMAXPROCS(0)).
func WithWorkers(n int) Option {
	return func(e *Engine) error {
		if n <= 0 {
			return fmt.Errorf("clsacim: invalid worker count %d", n)
		}
		e.workers = n
		return nil
	}
}

// WithCacheLimit bounds the compile cache to at most n retained
// compilations (default 0 = unbounded). Beyond the bound the
// least-recently-used finished entry is evicted; Stats.Evictions counts
// them. A long-running service sweeping many distinct
// (model, architecture, mapping) keys needs the bound to keep memory
// flat — each cached compilation holds the full Stage I/II analysis and
// every scheduled timeline of its model. In-flight compilations are
// never evicted, so the cache may transiently exceed n while more than
// n distinct keys compile concurrently.
func WithCacheLimit(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("clsacim: negative cache limit %d", n)
		}
		e.cacheLimit = n
		return nil
	}
}
