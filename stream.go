package clsacim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"clsacim/internal/metrics"
	"clsacim/internal/stream"
)

// ArrivalProcess selects how inference requests enter a streamed
// evaluation. All processes are seeded and fully deterministic: the
// same process produces the same arrival trace on every run.
type ArrivalProcess struct {
	// Kind is "closed" (default), "poisson", or "bursty".
	//
	//   - closed: a fixed population of Concurrency outstanding
	//     inferences; each completion immediately issues the next
	//     request (the classic closed-loop throughput benchmark).
	//   - poisson: open-loop arrivals at RatePerSec with exponential
	//     inter-arrival times.
	//   - bursty: an ON-OFF (interrupted Poisson) process — ON periods
	//     of mean MeanOnMillis with Poisson arrivals at RatePerSec,
	//     separated by silent OFF periods of mean MeanOffMillis.
	Kind string `json:"kind,omitempty"`
	// Seed drives the deterministic RNG (and, for multi-model streams,
	// the model mix sequence).
	Seed uint64 `json:"seed,omitempty"`
	// RatePerSec is the mean arrival rate while generating (poisson,
	// bursty).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// MeanOnMillis / MeanOffMillis shape the bursty process.
	MeanOnMillis  float64 `json:"mean_on_ms,omitempty"`
	MeanOffMillis float64 `json:"mean_off_ms,omitempty"`
	// Concurrency is the closed-loop population (default 1).
	Concurrency int `json:"concurrency,omitempty"`
}

const (
	arrivalClosed  = "closed"
	arrivalPoisson = "poisson"
	arrivalBursty  = "bursty"
)

func (a ArrivalProcess) kind() string {
	if a.Kind == "" {
		return arrivalClosed
	}
	return a.Kind
}

func (a ArrivalProcess) validate() error {
	switch a.kind() {
	case arrivalClosed:
		if a.Concurrency < 0 {
			return fmt.Errorf("clsacim: negative closed-loop concurrency %d", a.Concurrency)
		}
	case arrivalPoisson:
		if !(a.RatePerSec > 0) || math.IsInf(a.RatePerSec, 0) {
			return fmt.Errorf("clsacim: poisson arrivals need a positive rate, have %g/s", a.RatePerSec)
		}
	case arrivalBursty:
		if !(a.RatePerSec > 0) || math.IsInf(a.RatePerSec, 0) {
			return fmt.Errorf("clsacim: bursty arrivals need a positive rate, have %g/s", a.RatePerSec)
		}
		if !(a.MeanOnMillis > 0) || !(a.MeanOffMillis > 0) {
			return fmt.Errorf("clsacim: bursty arrivals need positive ON/OFF periods, have %g/%g ms",
				a.MeanOnMillis, a.MeanOffMillis)
		}
	default:
		return fmt.Errorf("clsacim: unknown arrival kind %q (want closed, poisson, or bursty)", a.Kind)
	}
	return nil
}

// StreamModel is one resident model class of a streamed evaluation: the
// model name plus the same per-request mapping overlays a Request
// carries, and a mix weight for multi-model streams.
type StreamModel struct {
	Model string `json:"model"`
	// Weight is the model's share of the request mix (default: equal).
	Weight float64 `json:"weight,omitempty"`
	// Mapping overlays, as in Request.
	ExtraPEs          int     `json:"extra_pes,omitempty"`
	TotalPEs          int     `json:"total_pes,omitempty"`
	WeightDuplication bool    `json:"weight_duplication,omitempty"`
	Solver            string  `json:"solver,omitempty"`
	Config            *Config `json:"config,omitempty"`
}

// request adapts the stream model to the Request overlay machinery so
// compilation shares the Engine's cache keys with ordinary requests.
func (s StreamModel) request() Request {
	return Request{
		Model:             s.Model,
		ExtraPEs:          s.ExtraPEs,
		TotalPEs:          s.TotalPEs,
		WeightDuplication: s.WeightDuplication,
		Solver:            s.Solver,
		Config:            s.Config,
	}
}

// StreamRequest describes one streamed multi-inference evaluation:
// which models stay resident on the fabric, how many inferences to
// serve, how they arrive, and how each inference is scheduled.
//
// Like Request it round-trips through JSON:
//
//	{"models": [{"model": "tinyyolov4"}], "inferences": 64,
//	 "mode": "xinf", "arrival": {"kind": "closed", "concurrency": 4}}
type StreamRequest struct {
	Models []StreamModel `json:"models"`
	// Inferences is the total number of requests to serve.
	Inferences int `json:"inferences"`
	// Arrival selects the arrival process (default: closed loop,
	// concurrency 1).
	Arrival ArrivalProcess `json:"arrival"`
	// Mode schedules each inference internally (default lbl); the
	// cross-inference admission is governed by MaxInFlight.
	Mode ScheduleMode `json:"mode"`
	// MaxInFlight gates admissions per model: inference j starts only
	// after inference j-MaxInFlight of the same model completed.
	// 0 = unbounded (admission limited only by the arrival process and
	// fabric contention).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// SharedPool co-schedules all models on one shared crossbar pool
	// (PE ranges overlap and time-share) instead of the default
	// disjoint per-model pools.
	SharedPool bool `json:"shared_pool,omitempty"`
	// TimeoutMillis bounds the request's wall-clock time as in Request.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// Validate checks the request against the process-wide registries
// without compiling anything.
func (r StreamRequest) Validate() error {
	if len(r.Models) == 0 {
		return fmt.Errorf("clsacim: stream request has no models")
	}
	for i, sm := range r.Models {
		if err := sm.request().Validate(); err != nil {
			return fmt.Errorf("clsacim: stream model %d: %w", i, err)
		}
		if sm.Weight < 0 || math.IsInf(sm.Weight, 0) || math.IsNaN(sm.Weight) {
			return fmt.Errorf("clsacim: stream model %d has invalid weight %g", i, sm.Weight)
		}
	}
	if r.Inferences <= 0 {
		return fmt.Errorf("clsacim: stream request needs a positive inference count, have %d", r.Inferences)
	}
	if r.MaxInFlight < 0 {
		return fmt.Errorf("clsacim: stream request has negative MaxInFlight %d", r.MaxInFlight)
	}
	if r.TimeoutMillis < 0 {
		return fmt.Errorf("clsacim: stream request has negative TimeoutMillis %d", r.TimeoutMillis)
	}
	return r.Arrival.validate()
}

// LatencyStats summarizes the per-inference sojourn time (completion
// minus arrival) distribution in nanoseconds.
type LatencyStats struct {
	P50Nanos  float64 `json:"p50_nanos"`
	P95Nanos  float64 `json:"p95_nanos"`
	P99Nanos  float64 `json:"p99_nanos"`
	MeanNanos float64 `json:"mean_nanos"`
	MaxNanos  float64 `json:"max_nanos"`
}

// StreamJob is the lifecycle of one served inference.
type StreamJob struct {
	Model        string  `json:"model"`
	ArrivalCycle int64   `json:"arrival_cycle"`
	StartCycle   int64   `json:"start_cycle"`
	EndCycle     int64   `json:"end_cycle"`
	LatencyNanos float64 `json:"latency_nanos"`
}

// StreamQueueSample is one point of the queue-depth trace.
type StreamQueueSample struct {
	Cycle int64 `json:"cycle"`
	Depth int   `json:"depth"`
}

// StreamModelResult is the per-model slice of a streamed evaluation,
// including the single-inference reference that quantifies the
// pipelining gain.
type StreamModelResult struct {
	Model      string `json:"model"`
	Inferences int    `json:"inferences"`
	// SingleMakespanCycles is the makespan of one isolated inference
	// under the same mode — the non-streamed reference.
	SingleMakespanCycles int64 `json:"single_makespan_cycles"`
	// SingleRatePerSec is 1/makespan expressed as inferences per
	// second: the throughput ceiling of serve-one-at-a-time execution.
	SingleRatePerSec float64 `json:"single_rate_per_sec"`
	// ThroughputPerSec is the model's streamed completion rate.
	ThroughputPerSec float64      `json:"throughput_per_sec"`
	Latency          LatencyStats `json:"latency"`
}

// StreamResult is the outcome of one streamed evaluation.
type StreamResult struct {
	Inferences     int     `json:"inferences"`
	MakespanCycles int64   `json:"makespan_cycles"`
	ElapsedNanos   float64 `json:"elapsed_nanos"`
	// ThroughputPerSec is completed inferences per second of simulated
	// time — the steady-state serving rate, not 1/makespan.
	ThroughputPerSec float64      `json:"throughput_per_sec"`
	Latency          LatencyStats `json:"latency"`
	// FabricPEs is the global crossbar count of the simulated fabric.
	FabricPEs int `json:"fabric_pes"`
	// PEUtilization is aggregate busy time over fabric-time (Eq. 2
	// generalized to the whole stream).
	PEUtilization float64 `json:"pe_utilization"`
	// UtilizationPerPE is the per-crossbar busy fraction over the
	// stream — the fabric heat map.
	UtilizationPerPE []float64 `json:"utilization_per_pe"`
	// QueueDepth traces the number of inferences in the system over
	// time, one sample per change.
	QueueDepth []StreamQueueSample `json:"queue_depth"`
	// Jobs holds each served inference's lifecycle in issue order.
	Jobs     []StreamJob         `json:"jobs"`
	PerModel []StreamModelResult `json:"per_model"`
}

// EvaluateStream schedules a stream of Inferences requests of the
// resident Models over one simulated fabric and reports steady-state
// throughput, tail latency, queue depth, and fabric utilization.
//
// Weights stay resident (streaming requires full residency, so
// virtualized compilations are rejected), and back-to-back inferences
// of one model pipeline through the fabric: the measured throughput
// exceeds 1/makespan whenever the arrival process keeps more than one
// inference in flight. Models run on disjoint crossbar pools by
// default; SharedPool co-schedules them on one time-shared pool.
// Compilations go through the Engine's cache, so a stream evaluation
// warms the same entries ordinary requests use. With WithValidation the
// full stream is revalidated against the engine-independent oracle
// (check.Stream) before results are returned.
func (e *Engine) EvaluateStream(ctx context.Context, req StreamRequest) (*StreamResult, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := requestCtx(ctx, Request{TimeoutMillis: req.TimeoutMillis})
	defer cancel()

	comps := make([]*Compiled, len(req.Models))
	for i, sm := range req.Models {
		m, err := lookupModel(sm.Model)
		if err != nil {
			return nil, err
		}
		// Overlay the stream's scheduling mode: hit accounting below and
		// scored solvers (which optimize the requested mode's makespan)
		// both need the mode the models will actually run under.
		r := sm.request()
		r.Mode = req.Mode
		c, hit, err := e.compileCounted(ctx, m, e.effective(r))
		if err != nil {
			return nil, err
		}
		if hit {
			e.notePartial(c, req.Mode)
		}
		if c.Virtualized() {
			return nil, fmt.Errorf("clsacim: stream model %q is virtualized (F < PEmin); streaming requires full weight residency", sm.Model)
		}
		comps[i] = c
	}
	tMVM := comps[0].cfg.TMVMNanos
	for i, c := range comps {
		if c.cfg.TMVMNanos != tMVM {
			return nil, fmt.Errorf("clsacim: stream models disagree on tMVM (%g ns vs %g ns); co-scheduled models share one fabric clock",
				tMVM, comps[i].cfg.TMVMNanos)
		}
	}

	specs := make([]stream.ModelSpec, len(comps))
	fabric := 0
	for i, c := range comps {
		mode := c.normalizeMode(req.Mode)
		base := 0
		if !req.SharedPool {
			base = fabric
			fabric += c.mapped.F
		} else if c.mapped.F > fabric {
			fabric = c.mapped.F
		}
		specs[i] = stream.ModelSpec{
			Name:    c.ModelName,
			Graph:   c.depGraph,
			Mapping: c.mapped,
			Policy:  mode.policy(),
			Edge:    c.schedOptions(mode).EdgeCost,
			PEBase:  base,
		}
	}

	seq, err := modelMix(req)
	if err != nil {
		return nil, err
	}
	w := stream.Workload{FabricPEs: fabric, Models: specs, Sequence: seq}
	cyclesPerSec := 1e9 / tMVM
	switch req.Arrival.kind() {
	case arrivalClosed:
		w.Concurrency = req.Arrival.Concurrency
		if w.Concurrency == 0 {
			w.Concurrency = 1
		}
	case arrivalPoisson:
		w.Arrivals, err = stream.PoissonArrivals(req.Arrival.Seed, req.Inferences,
			cyclesPerSec/req.Arrival.RatePerSec)
	case arrivalBursty:
		w.Arrivals, err = stream.BurstyArrivals(req.Arrival.Seed, req.Inferences, stream.BurstyConfig{
			MeanInterarrival: cyclesPerSec / req.Arrival.RatePerSec,
			MeanOnCycles:     req.Arrival.MeanOnMillis * 1e6 / tMVM,
			MeanOffCycles:    req.Arrival.MeanOffMillis * 1e6 / tMVM,
		})
	}
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res, err := stream.Run(w, stream.Options{MaxInFlight: req.MaxInFlight, Debug: e.validate})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	out, err := e.assembleStreamResult(req, comps, res, tMVM, fabric)
	if err != nil {
		return nil, err
	}
	e.streamEvals.Add(1)
	// Count served jobs, not requested inferences: the two agree on
	// complete runs, and StreamResult.Inferences and the serve layer's
	// per-request counter both report served jobs.
	e.streamInfs.Add(int64(out.Inferences))
	return out, nil
}

// modelMix expands the request into the per-job model sequence: a
// single-model stream is trivially uniform; a multi-model stream draws
// from the weights with a seed derived from the arrival seed so both
// traces stay reproducible.
func modelMix(req StreamRequest) ([]int, error) {
	if len(req.Models) == 1 {
		return make([]int, req.Inferences), nil
	}
	weights := make([]float64, len(req.Models))
	anySet := false
	for i, sm := range req.Models {
		weights[i] = sm.Weight
		if sm.Weight > 0 {
			anySet = true
		}
	}
	if !anySet {
		for i := range weights {
			weights[i] = 1
		}
	}
	return stream.ModelSequence(req.Arrival.Seed^0x6d697865726d6978, req.Inferences, weights)
}

func (e *Engine) assembleStreamResult(req StreamRequest, comps []*Compiled, res *stream.Result, tMVM float64, fabric int) (*StreamResult, error) {
	elapsed := metrics.LatencyNanos(res.MakespanCycles, tMVM)
	out := &StreamResult{
		Inferences:     len(res.Jobs),
		MakespanCycles: res.MakespanCycles,
		ElapsedNanos:   elapsed,
		FabricPEs:      fabric,
		Jobs:           make([]StreamJob, len(res.Jobs)),
		QueueDepth:     make([]StreamQueueSample, len(res.Queue)),
	}
	if elapsed > 0 {
		out.ThroughputPerSec = float64(len(res.Jobs)) / elapsed * 1e9
	}
	var lat []float64
	perModel := make([][]float64, len(comps))
	for j, js := range res.Jobs {
		l := metrics.LatencyNanos(js.End-js.Arrival, tMVM)
		lat = append(lat, l)
		perModel[js.Model] = append(perModel[js.Model], l)
		out.Jobs[j] = StreamJob{
			Model:        comps[js.Model].ModelName,
			ArrivalCycle: js.Arrival,
			StartCycle:   js.Start,
			EndCycle:     js.End,
			LatencyNanos: l,
		}
	}
	out.Latency = latencyStats(lat)
	for i, qs := range res.Queue {
		out.QueueDepth[i] = StreamQueueSample{Cycle: qs.Time, Depth: qs.Depth}
	}
	var busy int64
	out.UtilizationPerPE = make([]float64, len(res.PEActive))
	for p, a := range res.PEActive {
		busy += a
		if res.MakespanCycles > 0 {
			out.UtilizationPerPE[p] = float64(a) / float64(res.MakespanCycles)
		}
	}
	if res.MakespanCycles > 0 && fabric > 0 {
		out.PEUtilization = float64(busy) / (float64(fabric) * float64(res.MakespanCycles))
	}
	for i, c := range comps {
		rep, err := c.Schedule(req.Mode)
		if err != nil {
			return nil, err
		}
		if err := e.checkReport(rep); err != nil {
			return nil, err
		}
		mr := StreamModelResult{
			Model:                c.ModelName,
			Inferences:           len(perModel[i]),
			SingleMakespanCycles: rep.MakespanCycles,
			Latency:              latencyStats(perModel[i]),
		}
		if rep.LatencyNanos > 0 {
			mr.SingleRatePerSec = 1e9 / rep.LatencyNanos
		}
		if elapsed > 0 {
			mr.ThroughputPerSec = float64(len(perModel[i])) / elapsed * 1e9
		}
		out.PerModel = append(out.PerModel, mr)
	}
	return out, nil
}

// latencyStats computes nearest-rank percentiles over a latency sample.
func latencyStats(lat []float64) LatencyStats {
	if len(lat) == 0 {
		return LatencyStats{}
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return LatencyStats{
		P50Nanos:  rank(0.50),
		P95Nanos:  rank(0.95),
		P99Nanos:  rank(0.99),
		MeanNanos: sum / float64(len(s)),
		MaxNanos:  s[len(s)-1],
	}
}
