package clsacim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sweepRequests builds the canonical (x, wdup) sweep used by the cache
// tests and benchmarks: n points alternating mapping, all xinf.
func sweepRequests(model string, n int) []Request {
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, Request{
			Model:             model,
			Mode:              ModeCrossLayer,
			ExtraPEs:          i/2 + 1,
			WeightDuplication: i%2 == 1,
		})
	}
	return reqs
}

func TestEngineCompileCacheAccounting(t *testing.T) {
	eng := MustNew()
	ctx := context.Background()
	// 10 points: x in 1..5, each with and without duplication.
	reqs := sweepRequests("tinybranchnet", 10)
	for _, req := range reqs {
		if _, err := eng.Evaluate(ctx, req); err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
	}
	s := eng.Stats()
	// Distinct compile keys: the shared baseline (x=0, no duplication)
	// plus 5 x-values with duplication. The 5 no-duplication x points
	// fold onto the baseline key (extra PEs sit idle, so the compiled
	// artifacts are identical; see normalizeCfg) and are served as
	// F-adjusted views.
	const wantKeys = 6
	if s.Compiles != wantKeys {
		t.Errorf("Compiles = %d, want %d (one per distinct key)", s.Compiles, wantKeys)
	}
	if s.CacheMisses != wantKeys {
		t.Errorf("CacheMisses = %d, want %d", s.CacheMisses, wantKeys)
	}
	if want := int64(2*len(reqs)) - wantKeys; s.CacheHits != want {
		t.Errorf("CacheHits = %d, want %d", s.CacheHits, want)
	}
	if s.Evaluations != int64(len(reqs)) {
		t.Errorf("Evaluations = %d, want %d", s.Evaluations, len(reqs))
	}
	if s.CachedEntries != wantKeys {
		t.Errorf("CachedEntries = %d, want %d", s.CachedEntries, wantKeys)
	}

	// Re-running the whole sweep must not compile anything new.
	for _, req := range reqs {
		if _, err := eng.Evaluate(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if s2 := eng.Stats(); s2.Compiles != wantKeys {
		t.Errorf("repeat sweep compiled %d more times", s2.Compiles-wantKeys)
	}
}

func TestStatsPartialHits(t *testing.T) {
	eng := MustNew()
	ctx := context.Background()
	schedule := func(mode ScheduleMode) {
		t.Helper()
		if _, err := eng.Schedule(ctx, Request{Model: "tinybranchnet", Mode: mode}); err != nil {
			t.Fatal(err)
		}
	}
	schedule(ModeCrossLayer) // compiles fresh: neither hit nor partial
	if s := eng.Stats(); s.PartialHits != 0 || s.CacheHits != 0 {
		t.Fatalf("after miss: partial=%d hits=%d, want 0/0", s.PartialHits, s.CacheHits)
	}
	schedule(ModeCrossLayer) // full hit: compile and timeline cached
	if s := eng.Stats(); s.PartialHits != 0 || s.CacheHits != 1 {
		t.Fatalf("after full hit: partial=%d hits=%d, want 0/1", s.PartialHits, s.CacheHits)
	}
	schedule(ModeLayerByLayer) // partial: cached compile, uncached mode
	if s := eng.Stats(); s.PartialHits != 1 || s.CacheHits != 2 {
		t.Fatalf("after new mode: partial=%d hits=%d, want 1/2", s.PartialHits, s.CacheHits)
	}
	schedule(ModeLayerByLayer) // that mode is now cached too
	if s := eng.Stats(); s.PartialHits != 1 || s.CacheHits != 3 {
		t.Fatalf("after repeat: partial=%d hits=%d, want 1/3", s.PartialHits, s.CacheHits)
	}
	// An ExtraPEs view shares the base's timeline cache: both halves of
	// this evaluation are full hits and nothing recompiles.
	if _, err := eng.Evaluate(ctx, Request{Model: "tinybranchnet", Mode: ModeCrossLayer, ExtraPEs: 3}); err != nil {
		t.Fatal(err)
	}
	if s := eng.Stats(); s.PartialHits != 1 || s.CacheHits != 5 || s.Compiles != 1 {
		t.Fatalf("after view evaluation: partial=%d hits=%d compiles=%d, want 1/5/1",
			s.PartialHits, s.CacheHits, s.Compiles)
	}
}

func TestExtraPEsViewMatchesDirectCompile(t *testing.T) {
	// A no-duplication ExtraPEs request is served as an F-adjusted view
	// of the x = 0 compilation; every reported number must match a
	// direct one-shot compilation at F = PEmin + x.
	const x = 4
	eng := MustNew()
	rep, err := eng.Schedule(context.Background(),
		Request{Model: "tinybranchnet", Mode: ModeCrossLayer, ExtraPEs: x})
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel("tinybranchnet", ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile(m, Config{ExtraPEs: x})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := comp.Schedule(ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	if rep.F != direct.F || rep.F != rep.PEmin+x {
		t.Errorf("view F = %d, direct F = %d, want PEmin+%d = %d", rep.F, direct.F, x, rep.PEmin+x)
	}
	if rep.MakespanCycles != direct.MakespanCycles {
		t.Errorf("view makespan = %d, direct = %d", rep.MakespanCycles, direct.MakespanCycles)
	}
	if rep.Utilization != direct.Utilization {
		t.Errorf("view utilization = %v, direct = %v", rep.Utilization, direct.Utilization)
	}
	if rep.LatencyNanos != direct.LatencyNanos {
		t.Errorf("view latency = %v, direct = %v", rep.LatencyNanos, direct.LatencyNanos)
	}
	// The simulator sees the view's F too.
	vc, err := eng.Compile(context.Background(),
		Request{Model: "tinybranchnet", Mode: ModeCrossLayer, ExtraPEs: x})
	if err != nil {
		t.Fatal(err)
	}
	if vc.TotalPEs() != rep.PEmin+x {
		t.Errorf("view TotalPEs = %d, want %d", vc.TotalPEs(), rep.PEmin+x)
	}
	sr, err := vc.Simulate(ModeCrossLayer)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.PEActive) != rep.PEmin+x {
		t.Errorf("simulated PEActive length = %d, want F = %d", len(sr.PEActive), rep.PEmin+x)
	}
	if sr.Utilization != direct.Utilization {
		t.Errorf("simulated view utilization = %v, direct = %v", sr.Utilization, direct.Utilization)
	}
}

func TestEvaluateBatchStatsMatchSerial(t *testing.T) {
	// The sweep-structured batch must preserve the cache accounting of
	// the serial path exactly: one miss per distinct key, every further
	// reference a hit.
	reqs := sweepRequests("tinybranchnet", 8)
	serial := MustNew()
	for _, req := range reqs {
		if _, err := serial.Evaluate(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	batch := MustNew()
	results, err := batch.EvaluateBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("batch result %d: %v", i, res.Err)
		}
	}
	ss, bs := serial.Stats(), batch.Stats()
	if bs.Compiles != ss.Compiles || bs.CacheMisses != ss.CacheMisses ||
		bs.CacheHits != ss.CacheHits || bs.Evaluations != ss.Evaluations {
		t.Errorf("batch stats %+v, serial stats %+v", bs, ss)
	}
	if bs.CachedEntries != ss.CachedEntries {
		t.Errorf("batch cached %d entries, serial %d", bs.CachedEntries, ss.CachedEntries)
	}
}

func TestSimulateCoarseMatchesFull(t *testing.T) {
	eng := MustNew()
	comp, err := eng.Compile(context.Background(),
		Request{Model: "tinybranchnet", Mode: ModeCrossLayer, ExtraPEs: 2, WeightDuplication: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ScheduleMode{ModeLayerByLayer, ModeWindow(2), ModeCrossLayer} {
		full, err := comp.Simulate(mode)
		if err != nil {
			t.Fatal(err)
		}
		coarse, err := comp.SimulateCoarse(mode)
		if err != nil {
			t.Fatal(err)
		}
		if coarse.MakespanCycles != full.MakespanCycles ||
			coarse.Utilization != full.Utilization ||
			coarse.PeakLiveElems != full.PeakLiveElems ||
			coarse.LatencyNanos != full.LatencyNanos {
			t.Errorf("%s: coarse %+v disagrees with full simulation (makespan %d, util %v, peak %d)",
				mode, coarse, full.MakespanCycles, full.Utilization, full.PeakLiveElems)
		}
	}
}

func TestSolverSweepSharesBaseline(t *testing.T) {
	// The baseline never runs a solver, so requests differing only in
	// Solver must share one baseline compilation.
	eng := MustNew()
	solvers := []string{"dp", "greedy", "minmax"}
	for _, s := range solvers {
		_, err := eng.Evaluate(context.Background(), Request{
			Model: "tinybranchnet", Mode: ModeCrossLayer,
			ExtraPEs: 3, WeightDuplication: true, Solver: s,
		})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	want := int64(len(solvers) + 1) // one per solver + the shared baseline
	if s := eng.Stats(); s.Compiles != want {
		t.Errorf("Compiles = %d, want %d (baseline shared across solver names)", s.Compiles, want)
	}
}

func TestCompilePanicDoesNotPoisonCache(t *testing.T) {
	err := RegisterSolver("test-panics", func(layers []SolverLayer, totalPEs, minPEs int) ([]int, error) {
		panic("solver boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := MustNew()
	req := Request{Model: "tinyconvnet", ExtraPEs: 1, WeightDuplication: true, Solver: "test-panics"}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			if recover() == nil {
				t.Error("solver panic did not propagate")
			}
		}()
		_, _ = eng.Compile(context.Background(), req)
	}()
	<-done
	// Later requests for the poisoned key must fail fast, not hang on
	// the never-compiled entry.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = eng.Compile(ctx, req)
	if err == nil {
		t.Fatal("compile after panic returned nil error")
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("compile after panic hung until the deadline")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("err = %v, want the synthesized panic error", err)
	}
}

func TestEngineMatchesLegacyEvaluate(t *testing.T) {
	eng := MustNew()
	for _, wdup := range []bool{false, true} {
		req := Request{Model: "tinybranchnet", Mode: ModeCrossLayer, ExtraPEs: 3, WeightDuplication: wdup}
		got, err := eng.Evaluate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		m := load(t, "tinybranchnet")
		want, err := Evaluate(m, Config{ExtraPEs: 3, WeightDuplication: wdup}, ModeCrossLayer)
		if err != nil {
			t.Fatal(err)
		}
		if got.Result.MakespanCycles != want.Result.MakespanCycles ||
			got.Baseline.MakespanCycles != want.Baseline.MakespanCycles ||
			got.Speedup != want.Speedup {
			t.Errorf("wdup=%v: engine (%d, %d, %.4f) != legacy (%d, %d, %.4f)", wdup,
				got.Result.MakespanCycles, got.Baseline.MakespanCycles, got.Speedup,
				want.Result.MakespanCycles, want.Baseline.MakespanCycles, want.Speedup)
		}
	}
}

func TestEvaluateBatchConcurrent(t *testing.T) {
	eng := MustNew(WithWorkers(8))
	var reqs []Request
	for _, model := range []string{"tinyconvnet", "tinybranchnet"} {
		reqs = append(reqs, sweepRequests(model, 10)...)
	}
	results, err := eng.EvaluateBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if res.Request != reqs[i] {
			t.Errorf("result %d not positionally aligned", i)
		}
		if res.Evaluation == nil || res.Evaluation.Result.MakespanCycles <= 0 {
			t.Errorf("request %d: empty evaluation", i)
		}
	}
	// The batch outcome must be identical to the serial outcome.
	serial := MustNew()
	for i, req := range reqs {
		want, err := serial.Evaluate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if got := results[i].Evaluation; got.Result.MakespanCycles != want.Result.MakespanCycles {
			t.Errorf("request %d: batch makespan %d != serial %d",
				i, got.Result.MakespanCycles, want.Result.MakespanCycles)
		}
	}
}

func TestEngineConcurrentSameKey(t *testing.T) {
	// Hammer one key from many goroutines: exactly one compile may
	// happen, and everyone must see the same *Compiled.
	eng := MustNew()
	req := Request{Model: "tinyconvnet", Mode: ModeCrossLayer, ExtraPEs: 2, WeightDuplication: true}
	const n = 16
	comps := make([]*Compiled, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			c, err := eng.Compile(context.Background(), req)
			if err != nil {
				t.Error(err)
				return
			}
			comps[i] = c
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if comps[i] != comps[0] {
			t.Fatal("concurrent compiles returned different instances")
		}
	}
	if s := eng.Stats(); s.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1", s.Compiles)
	}
}

func TestEvaluateBatchCancelled(t *testing.T) {
	eng := MustNew()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := eng.EvaluateBatch(ctx, sweepRequests("tinyconvnet", 4))
	if err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
	for i, res := range results {
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("result %d: err = %v, want context.Canceled", i, res.Err)
		}
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	if b, err := json.Marshal(Config{}); err != nil || string(b) != "{}" {
		t.Errorf("zero Config marshals to %s (%v), want {}", b, err)
	}
	in := Config{
		PERows: 128, PECols: 64,
		TMVMNanos:              700,
		ExtraPEs:               16,
		WeightDuplication:      true,
		Solver:                 "minmax",
		TargetSets:             26,
		WeightBits:             4,
		NoCCyclesPerHop:        1.5,
		GPEUCyclesPerKElem:     2,
		PEsPerTile:             8,
		WeightVirtualization:   true,
		WriteCyclesPerCrossbar: 1024,
		WriteParallelism:       2,
		EnergyPerMVMNanoJ:      0.25,
		EnergyPerWriteNanoJ:    100,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Config
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip changed the config:\n in  %+v\n out %+v", in, out)
	}
}

func TestRequestJSONRoundTrip(t *testing.T) {
	cfg := Config{PERows: 128, PECols: 128, NoCCyclesPerHop: 2}
	in := Request{
		Model:             "tinyyolov4",
		Mode:              ModeCrossLayer,
		ExtraPEs:          32,
		WeightDuplication: true,
		Solver:            "greedy",
		Config:            &cfg,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"mode":"xinf"`) {
		t.Errorf("mode not encoded as wire name: %s", b)
	}
	var out Request
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the request:\n in  %+v\n out %+v", in, out)
	}

	// A wire-format request (hand-written JSON) must evaluate.
	wire := `{"model": "tinyconvnet", "mode": "xinf", "extra_pes": 2, "weight_duplication": true}`
	var req Request
	if err := json.Unmarshal([]byte(wire), &req); err != nil {
		t.Fatal(err)
	}
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	ev, err := MustNew().Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Result.Mode != ModeCrossLayer || ev.Speedup <= 0 {
		t.Errorf("wire request evaluated wrong: mode %v speedup %f", ev.Result.Mode, ev.Speedup)
	}
}

func TestScheduleModeJSON(t *testing.T) {
	var m ScheduleMode
	for _, tc := range []struct {
		in   string
		want ScheduleMode
	}{
		{`"xinf"`, ModeCrossLayer}, {`"lbl"`, ModeLayerByLayer},
		{`"layer-by-layer"`, ModeLayerByLayer}, {`"XINF"`, ModeCrossLayer},
		{`"x1"`, ModeWindow(1)}, {`"x4"`, ModeWindow(4)}, {`"X16"`, ModeWindow(16)},
		{`0`, ModeLayerByLayer}, {`1`, ModeCrossLayer},
	} {
		if err := json.Unmarshal([]byte(tc.in), &m); err != nil {
			t.Errorf("%s: %v", tc.in, err)
		} else if m != tc.want {
			t.Errorf("%s = %v, want %v", tc.in, m, tc.want)
		}
	}
	if err := json.Unmarshal([]byte(`"warp"`), &m); !errors.Is(err, ErrUnknownMode) {
		t.Errorf("unknown mode error = %v, want ErrUnknownMode", err)
	}
	if err := json.Unmarshal([]byte(`"x0"`), &m); !errors.Is(err, ErrUnknownMode) {
		t.Errorf("x0 error = %v, want ErrUnknownMode", err)
	}
	for _, mode := range []ScheduleMode{ModeLayerByLayer, ModeCrossLayer, ModeWindow(2), ModeWindow(9)} {
		b, err := json.Marshal(mode)
		if err != nil {
			t.Fatal(err)
		}
		var back ScheduleMode
		if err := json.Unmarshal(b, &back); err != nil || back != mode {
			t.Errorf("mode %v round trip = %v, %v", mode, back, err)
		}
	}
	if err := json.Unmarshal([]byte(`7`), &m); !errors.Is(err, ErrUnknownMode) {
		t.Errorf("unknown numeric mode error = %v, want ErrUnknownMode", err)
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]ScheduleMode{
		"xinf": ModeCrossLayer, "lbl": ModeLayerByLayer,
		"cross-layer": ModeCrossLayer, "Layer-By-Layer": ModeLayerByLayer,
		"x1": ModeWindow(1), "x2": ModeWindow(2), "X8": ModeWindow(8),
	} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("bogus"); !errors.Is(err, ErrUnknownMode) {
		t.Errorf("ParseMode(bogus) = %v, want ErrUnknownMode", err)
	}
}

func TestRegisterSolver(t *testing.T) {
	// A trivial custom solver: never duplicate anything. It must
	// produce exactly the "none" mapping through the full pipeline.
	allOnes := func(layers []SolverLayer, totalPEs, minPEs int) ([]int, error) {
		d := make([]int, len(layers))
		for i := range d {
			d[i] = 1
		}
		return d, nil
	}
	if err := RegisterSolver("test-all-ones", allOnes); err != nil {
		t.Fatal(err)
	}
	if err := RegisterSolver("test-all-ones", allOnes); !errors.Is(err, ErrDuplicateSolver) {
		t.Errorf("duplicate registration = %v, want ErrDuplicateSolver", err)
	}
	if err := RegisterSolver("dp", allOnes); !errors.Is(err, ErrDuplicateSolver) {
		t.Errorf("builtin shadowing = %v, want ErrDuplicateSolver", err)
	}
	found := false
	for _, name := range Solvers() {
		if name == "test-all-ones" {
			found = true
		}
	}
	if !found {
		t.Errorf("Solvers() = %v does not list the custom solver", Solvers())
	}

	eng := MustNew()
	custom, err := eng.Evaluate(context.Background(), Request{
		Model: "tinybranchnet", Mode: ModeCrossLayer,
		ExtraPEs: 4, WeightDuplication: true, Solver: "test-all-ones",
	})
	if err != nil {
		t.Fatal(err)
	}
	none, err := eng.Evaluate(context.Background(), Request{
		Model: "tinybranchnet", Mode: ModeCrossLayer,
		ExtraPEs: 4, WeightDuplication: true, Solver: "none",
	})
	if err != nil {
		t.Fatal(err)
	}
	if custom.Result.MakespanCycles != none.Result.MakespanCycles {
		t.Errorf("all-ones solver makespan %d != none solver %d",
			custom.Result.MakespanCycles, none.Result.MakespanCycles)
	}
}

func TestRegisterSolverRejectsOverspending(t *testing.T) {
	greedyAll := func(layers []SolverLayer, totalPEs, minPEs int) ([]int, error) {
		d := make([]int, len(layers))
		for i, l := range layers {
			d[i] = l.MaxDup // ignores the budget
		}
		return d, nil
	}
	if err := RegisterSolver("test-overspend", greedyAll); err != nil {
		t.Fatal(err)
	}
	_, err := MustNew().Evaluate(context.Background(), Request{
		Model: "tinybranchnet", Mode: ModeCrossLayer,
		ExtraPEs: 1, WeightDuplication: true, Solver: "test-overspend",
	})
	if err == nil || !strings.Contains(err.Error(), "test-overspend") {
		t.Errorf("overspending solver not rejected: %v", err)
	}
}

func TestUnknownSolverTyped(t *testing.T) {
	_, err := MustNew().Evaluate(context.Background(), Request{
		Model: "tinyconvnet", WeightDuplication: true, Solver: "bogus",
	})
	if !errors.Is(err, ErrUnknownSolver) {
		t.Fatalf("err = %v, want ErrUnknownSolver", err)
	}
	if !strings.Contains(err.Error(), "dp") {
		t.Errorf("error does not list available solvers: %v", err)
	}
	if _, err := New(WithSolver("bogus")); !errors.Is(err, ErrUnknownSolver) {
		t.Errorf("WithSolver(bogus) = %v, want ErrUnknownSolver", err)
	}
}

func TestUnknownModelTyped(t *testing.T) {
	_, err := LoadModel("nope", ModelOptions{})
	if !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("LoadModel err = %v, want ErrUnknownModel", err)
	}
	if !strings.Contains(err.Error(), "tinyyolov4") {
		t.Errorf("error does not list available models: %v", err)
	}
	_, err = MustNew().Evaluate(context.Background(), Request{Model: "nope"})
	if !errors.Is(err, ErrUnknownModel) {
		t.Errorf("engine err = %v, want ErrUnknownModel", err)
	}
	if err := (Request{Model: "nope"}).Validate(); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("Validate err = %v, want ErrUnknownModel", err)
	}
}

func TestRegisterModel(t *testing.T) {
	b, in := NewBuilder("test-registered-net", 16, 16, 3)
	x := b.Conv2D(in, 8, 3, 1, true)
	b.Output(b.ReLU(x))
	m, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterModel("test-registered-net", m); err != nil {
		t.Fatal(err)
	}
	if err := RegisterModel("test-registered-net", m); !errors.Is(err, ErrDuplicateModel) {
		t.Errorf("duplicate registration = %v, want ErrDuplicateModel", err)
	}
	if err := RegisterModel("tinyyolov4", m); !errors.Is(err, ErrDuplicateModel) {
		t.Errorf("builtin shadowing = %v, want ErrDuplicateModel", err)
	}
	found := false
	for _, name := range AllModels() {
		if name == "test-registered-net" {
			found = true
		}
	}
	if !found {
		t.Error("AllModels does not list the registered model")
	}
	ev, err := MustNew().Evaluate(context.Background(), Request{
		Model: "test-registered-net", Mode: ModeCrossLayer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Result.Model != "test-registered-net" {
		t.Errorf("evaluated model %q", ev.Result.Model)
	}
}

func TestRequestValidate(t *testing.T) {
	if err := (Request{}).Validate(); err == nil {
		t.Error("empty request validated")
	}
	if err := (Request{Model: "tinyconvnet", ExtraPEs: -1}).Validate(); err == nil {
		t.Error("negative ExtraPEs validated")
	}
	if err := (Request{Model: "tinyconvnet", Solver: "bogus"}).Validate(); !errors.Is(err, ErrUnknownSolver) {
		t.Errorf("bad solver Validate = %v", err)
	}
	if err := (Request{Model: "tinyconvnet", Mode: ModeCrossLayer}).Validate(); err != nil {
		t.Errorf("good request rejected: %v", err)
	}
}

func TestEngineOptionErrors(t *testing.T) {
	for name, opt := range map[string]Option{
		"crossbar": WithCrossbar(0, 256),
		"tmvm":     WithTMVMNanos(-1),
		"noc":      WithNoC(-0.5),
		"gpeu":     WithGPEU(-1),
		"energy":   WithEnergy(-1, 0),
		"sets":     WithTargetSets(-1),
		"tile":     WithPEsPerTile(0),
		"workers":  WithWorkers(0),
		"virt":     WithVirtualization(-1, 0),
	} {
		if _, err := New(opt); err == nil {
			t.Errorf("option %s accepted an invalid value", name)
		}
	}
}

// sweepModel and sweepPoints define the benchmark workload: ≥10
// (x, wdup) points on the paper's case-study model.
const sweepModel = "tinyyolov4"
const sweepPoints = 10

// BenchmarkEngineSweep runs the sweep through one Engine per iteration:
// the compile cache builds each distinct (model, arch, mapping) key once
// and shares the layer-by-layer baseline across all points.
func BenchmarkEngineSweep(b *testing.B) {
	reqs := sweepRequests(sweepModel, sweepPoints)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := MustNew()
		for _, req := range reqs {
			if _, err := eng.Evaluate(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
		// Distinct keys: the shared baseline (which also serves every
		// no-duplication x point as an F-view) plus the 5 wdup points.
		if s := eng.Stats(); s.Compiles != sweepPoints/2+1 {
			b.Fatalf("engine compiled %d times, want %d (one per distinct key)",
				s.Compiles, sweepPoints/2+1)
		}
	}
}

// BenchmarkOneShotSweep is the same sweep through the legacy one-shot
// Evaluate: every point recompiles both the baseline and itself.
func BenchmarkOneShotSweep(b *testing.B) {
	reqs := sweepRequests(sweepModel, sweepPoints)
	m, err := LoadModel(sweepModel, ModelOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, req := range reqs {
			cfg := Config{ExtraPEs: req.ExtraPEs, WeightDuplication: req.WeightDuplication}
			if _, err := Evaluate(m, cfg, req.Mode); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEvaluateBatch measures the concurrent batch path end to end.
func BenchmarkEvaluateBatch(b *testing.B) {
	reqs := sweepRequests(sweepModel, sweepPoints)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := MustNew()
		results, err := eng.EvaluateBatch(context.Background(), reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

// Ensure the BenchmarkOneShotSweep workload really is the equivalent
// sweep (same requests, same results) so the benchmark comparison is
// apples to apples.
func TestSweepWorkloadsAgree(t *testing.T) {
	reqs := sweepRequests("tinybranchnet", 4)
	eng := MustNew()
	m := load(t, "tinybranchnet")
	for _, req := range reqs {
		got, err := eng.Evaluate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Evaluate(m, Config{ExtraPEs: req.ExtraPEs, WeightDuplication: req.WeightDuplication}, req.Mode)
		if err != nil {
			t.Fatal(err)
		}
		if got.Result.MakespanCycles != want.Result.MakespanCycles {
			t.Errorf("%+v: %d != %d", req, got.Result.MakespanCycles, want.Result.MakespanCycles)
		}
	}
}

func TestWithCacheLimitEvictsLRU(t *testing.T) {
	eng := MustNew(WithCacheLimit(2))
	ctx := context.Background()
	eval := func(x int) {
		t.Helper()
		_, err := eng.Evaluate(ctx, Request{
			Model: "tinyconvnet", Mode: ModeCrossLayer,
			ExtraPEs: x, WeightDuplication: true,
		})
		if err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
	}
	// Each Evaluate touches the shared baseline (keeping it hot) and one
	// variant key; with limit 2 the previous variant is evicted each
	// time while the baseline survives as most-recently-used.
	eval(1) // cache: {x1, baseline}
	eval(2) // x1 evicted
	eval(3) // x2 evicted
	eval(1) // x1 recompiles, x3 evicted

	s := eng.Stats()
	if s.CacheLimit != 2 {
		t.Errorf("CacheLimit = %d, want 2", s.CacheLimit)
	}
	if s.CachedEntries > 2 {
		t.Errorf("CachedEntries = %d exceeds limit 2", s.CachedEntries)
	}
	// Keys compiled: baseline, x1, x2, x3, x1 again after its eviction.
	if s.Compiles != 5 {
		t.Errorf("Compiles = %d, want 5 (x1 recompiled after eviction)", s.Compiles)
	}
	if s.Evictions != 3 {
		t.Errorf("Evictions = %d, want 3", s.Evictions)
	}
	// 4 evaluations x 2 lookups each; 5 missed, the rest (including
	// every baseline reuse) hit.
	if s.CacheMisses != 5 || s.CacheHits != 3 {
		t.Errorf("misses/hits = %d/%d, want 5/3 (baseline must never be evicted mid-sweep)",
			s.CacheMisses, s.CacheHits)
	}
}

func TestCacheLimitKeepsInflightEntries(t *testing.T) {
	// An in-flight compilation must never be evicted: waiters hold its
	// single-flight slot, and dropping it would recompile the same key
	// concurrently. Block a compile inside a custom solver and churn
	// the bounded cache underneath it.
	started := make(chan struct{})
	release := make(chan struct{})
	var startedOnce sync.Once
	var solverRuns atomic.Int64
	// The solver registry is process-global and rejects duplicates, so
	// the name must be fresh under -count=N.
	solverName := fmt.Sprintf("test-blocks-%d", time.Now().UnixNano())
	err := RegisterSolver(solverName, func(layers []SolverLayer, totalPEs, minPEs int) ([]int, error) {
		solverRuns.Add(1)
		startedOnce.Do(func() { close(started) })
		<-release
		d := make([]int, len(layers))
		for i := range d {
			d[i] = 1
		}
		return d, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := MustNew(WithCacheLimit(2))
	ctx := context.Background()
	blocked := Request{
		Model: "tinyconvnet", Mode: ModeCrossLayer,
		ExtraPEs: 1, WeightDuplication: true, Solver: solverName,
	}
	errA := make(chan error, 1)
	go func() {
		_, err := eng.Evaluate(ctx, blocked)
		errA <- err
	}()
	<-started
	// A second identical request must join the in-flight slot as a
	// waiter (two cache hits: the baseline and the blocked key). Wait
	// until its lookups registered before churning the cache.
	errB := make(chan error, 1)
	go func() {
		_, err := eng.Evaluate(ctx, blocked)
		errB <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for eng.Stats().CacheHits < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the cache")
		}
		time.Sleep(time.Millisecond)
	}
	// While the blocked key compiles and B waits on it, push several
	// other keys through the bounded cache; each insert runs the
	// eviction scan. The in-flight entry must survive all of it.
	for x := 2; x <= 4; x++ {
		if _, err := eng.Evaluate(ctx, Request{
			Model: "tinyconvnet", Mode: ModeCrossLayer,
			ExtraPEs: x, WeightDuplication: true,
		}); err != nil {
			t.Fatalf("x=%d during blocked compile: %v", x, err)
		}
	}
	close(release)
	if err := <-errA; err != nil {
		t.Fatalf("blocked evaluation failed: %v", err)
	}
	if err := <-errB; err != nil {
		t.Fatalf("waiting evaluation failed: %v", err)
	}
	// Had the churn evicted the in-flight entry, the second request
	// would have started a second compilation of the same key.
	if runs := solverRuns.Load(); runs != 1 {
		t.Errorf("solver ran %d times, want 1 (in-flight entry evicted from bounded cache)", runs)
	}
	if s := eng.Stats(); s.CachedEntries > 2 {
		t.Errorf("CachedEntries = %d, want <= limit 2", s.CachedEntries)
	}
}

func TestRequestTimeoutMillis(t *testing.T) {
	eng := MustNew()
	// Pin the compile duration well past the deadline with a sleeping
	// solver, so the deadline check after compilation fires
	// deterministically (racing a real cold compile against a short
	// timer is flaky under load).
	solverName := fmt.Sprintf("test-sleeps-%d", time.Now().UnixNano())
	if err := RegisterSolver(solverName, func(layers []SolverLayer, totalPEs, minPEs int) ([]int, error) {
		time.Sleep(250 * time.Millisecond)
		d := make([]int, len(layers))
		for i := range d {
			d[i] = 1
		}
		return d, nil
	}); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Evaluate(context.Background(), Request{
		Model: "tinyconvnet", ExtraPEs: 1, WeightDuplication: true,
		Solver: solverName, TimeoutMillis: 1,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The request's own deadline must not loosen an earlier caller
	// deadline.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = eng.Evaluate(ctx, Request{Model: "tinyconvnet", TimeoutMillis: 60_000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Engine.Compile honors the same contract: a cold compile that ran
	// past the deadline reports the expiry to the bounded caller (the
	// compilation itself still lands in the cache).
	_, err = eng.Compile(context.Background(), Request{
		Model: "tinyconvnet", ExtraPEs: 2, WeightDuplication: true,
		Solver: solverName, TimeoutMillis: 1,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Compile err = %v, want context.DeadlineExceeded", err)
	}
	// Negative timeouts are rejected by validation.
	if err := (Request{Model: "tinyconvnet", TimeoutMillis: -1}).Validate(); err == nil {
		t.Fatal("negative TimeoutMillis passed Validate")
	}
	// A generous timeout lets the request complete normally.
	if _, err := eng.Evaluate(context.Background(), Request{Model: "tinyconvnet", TimeoutMillis: 600_000}); err != nil {
		t.Fatalf("generous timeout failed: %v", err)
	}
	// An absurd timeout clamps instead of overflowing time.Duration
	// into an instantly-expired deadline.
	if _, err := eng.Evaluate(context.Background(), Request{Model: "tinyconvnet", TimeoutMillis: math.MaxInt64 / 2}); err != nil {
		t.Fatalf("huge timeout failed: %v", err)
	}
}

// TestEvaluateBatchMixedDeadlines: a short-timeout request in a batch
// must not poison co-batched requests sharing its compile key. The
// shared compile runs under the batch context; the short deadline fails
// only that request's own result slot.
func TestEvaluateBatchMixedDeadlines(t *testing.T) {
	eng := MustNew()
	// Pin the shared compile well past the short deadline with a
	// sleeping solver so the timeout fires deterministically.
	solverName := fmt.Sprintf("test-batch-sleeps-%d", time.Now().UnixNano())
	if err := RegisterSolver(solverName, func(layers []SolverLayer, totalPEs, minPEs int) ([]int, error) {
		time.Sleep(250 * time.Millisecond)
		d := make([]int, len(layers))
		for i := range d {
			d[i] = 1
		}
		return d, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Request 0 (the compile job's probe under the old attribution) has
	// a 1 ms deadline; requests 1 and 2 share its compile key with no
	// deadline and a generous one.
	mk := func(timeoutMillis int64) Request {
		return Request{
			Model: "tinyconvnet", Mode: ModeCrossLayer, ExtraPEs: 1,
			WeightDuplication: true, Solver: solverName,
			TimeoutMillis: timeoutMillis,
		}
	}
	out, err := eng.EvaluateBatch(context.Background(), []Request{mk(1), mk(0), mk(60_000)})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out[0].Err, context.DeadlineExceeded) {
		t.Errorf("short-deadline request: err = %v, want context.DeadlineExceeded", out[0].Err)
	}
	for i := 1; i < 3; i++ {
		if out[i].Err != nil {
			t.Errorf("request %d poisoned by co-batched deadline: %v", i, out[i].Err)
		} else if out[i].Evaluation == nil {
			t.Errorf("request %d has neither evaluation nor error", i)
		}
	}
	// The compilation itself completed and is cached: re-running the
	// deadline-free request compiles nothing new.
	before := eng.Stats().Compiles
	if _, err := eng.Evaluate(context.Background(), mk(0)); err != nil {
		t.Fatal(err)
	}
	if after := eng.Stats().Compiles; after != before {
		t.Errorf("re-run recompiled: %d -> %d", before, after)
	}
}
