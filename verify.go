package clsacim

import (
	"fmt"

	"clsacim/internal/cim"
	"clsacim/internal/frontend"
	"clsacim/internal/im2col"
	"clsacim/internal/mapping"
	"clsacim/internal/nn"
	"clsacim/internal/tensor"
)

// VerifyReport summarizes the functional-equivalence checks of the
// compilation pipeline on one model (see VerifyFunctional).
type VerifyReport struct {
	Model   string
	Outputs int
	// MaxErrCanonicalization is the maximum absolute output difference
	// between the imported graph and the canonicalized graph (BN
	// folding + partitioning). Small float reassociation noise only.
	MaxErrCanonicalization float32
	// MaxErrDuplication is the maximum absolute output difference after
	// additionally applying the TF-style weight-duplication rewrite
	// (paper Fig. 4, Slice -> duplicates -> Concat). Zero: duplicates
	// compute the identical dot products.
	MaxErrDuplication float32
	// MaxErrCrossbar is the maximum absolute output difference between
	// the canonicalized float reference and full execution on the
	// functional crossbar model (quantized weights and inputs).
	// Bounded by quantization noise.
	MaxErrCrossbar float32
	// OutputScale is the maximum absolute output value of the float
	// reference, for putting the crossbar error in relation.
	OutputScale float32
	// PEsProgrammed counts the crossbars programmed for the run.
	PEsProgrammed int
	// DuplicatedLayers counts layers the rewrite duplicated.
	DuplicatedLayers int
}

// VerifyFunctional checks, end to end, that the compilation pipeline
// preserves inference results on a weight-carrying model: it executes
// (a) the imported graph, (b) the canonicalized graph, (c) the graph
// after the weight-duplication rewrite, and (d) the canonicalized graph
// on the functional crossbar model, and reports the pairwise output
// deviations. extraPEs controls how much duplication the rewrite gets
// to play with.
func VerifyFunctional(model *Model, seed int64, extraPEs int) (*VerifyReport, error) {
	g0, err := model.graph()
	if err != nil {
		return nil, err
	}
	if err := requireWeights(g0); err != nil {
		return nil, fmt.Errorf("clsacim: verify %q: %w", model.Name, err)
	}
	input := tensor.New(g0.Input.OutShape)
	input.FillRand(seed, 1)
	exec := &nn.Executor{}

	ref, err := exec.RunOutputs(g0, input)
	if err != nil {
		return nil, fmt.Errorf("clsacim: verify %q: imported graph: %w", model.Name, err)
	}

	// (b) canonicalized, unquantized (float reference of the canonical
	// form).
	g1 := g0.Clone()
	if _, err := frontend.Canonicalize(g1, frontend.Options{}); err != nil {
		return nil, err
	}
	canon, err := exec.RunOutputs(g1, input)
	if err != nil {
		return nil, fmt.Errorf("clsacim: verify %q: canonical graph: %w", model.Name, err)
	}

	rep := &VerifyReport{Model: model.Name, Outputs: len(ref)}
	for i := range ref {
		if d := tensor.MaxAbsDiff(ref[i], canon[i]); d > rep.MaxErrCanonicalization {
			rep.MaxErrCanonicalization = d
		}
		if m := canon[i].MaxAbs(); m > rep.OutputScale {
			rep.OutputScale = m
		}
	}

	// (c) weight-duplication rewrite on a fresh canonical clone.
	g2 := g1.Clone()
	pe := im2col.PEDims{Rows: 256, Cols: 256}
	plan, err := mapping.Analyze(g2, pe)
	if err != nil {
		return nil, err
	}
	sol, err := mapping.Solve(plan, plan.MinPEs+extraPEs, mapping.SolverDP)
	if err != nil {
		return nil, err
	}
	for _, d := range sol.D {
		if d > 1 {
			rep.DuplicatedLayers++
		}
	}
	if err := mapping.RewriteDuplication(g2, plan, sol); err != nil {
		return nil, err
	}
	duped, err := exec.RunOutputs(g2, input)
	if err != nil {
		return nil, fmt.Errorf("clsacim: verify %q: duplicated graph: %w", model.Name, err)
	}
	for i := range canon {
		if d := tensor.MaxAbsDiff(canon[i], duped[i]); d > rep.MaxErrDuplication {
			rep.MaxErrDuplication = d
		}
	}

	// (d) crossbar execution of the canonical graph.
	cfg := cim.Default()
	cfg.NumPEs = plan.MinPEs
	ge := cim.NewGraphExecutor(cfg)
	xbar, err := ge.Run(g1, input)
	if err != nil {
		return nil, fmt.Errorf("clsacim: verify %q: crossbar execution: %w", model.Name, err)
	}
	for i := range canon {
		if d := tensor.MaxAbsDiff(canon[i], xbar[i]); d > rep.MaxErrCrossbar {
			rep.MaxErrCrossbar = d
		}
	}
	rep.PEsProgrammed = ge.PEsProgrammed()
	return rep, nil
}

func requireWeights(g *nn.Graph) error {
	for _, n := range g.Nodes {
		switch op := n.Op.(type) {
		case *nn.Conv2D:
			if op.W == nil {
				return fmt.Errorf("model is shape-only; load it with WithWeights")
			}
		case *nn.Dense:
			if op.W == nil {
				return fmt.Errorf("model is shape-only; load it with WithWeights")
			}
		case *nn.DepthwiseConv2D:
			if op.W == nil {
				return fmt.Errorf("model is shape-only; load it with WithWeights")
			}
		}
	}
	return nil
}
